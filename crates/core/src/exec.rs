//! Execution-time model for DigiQ controllers (Fig 9).
//!
//! Consumes a routed, lowered, crosstalk-scheduled circuit (slots from
//! `qcircuit::schedule`) and charges controller time per slot under each
//! design's constraints:
//!
//! * **Impossible MIMD / MIMD baselines / DigiQ_min** — these designs
//!   impose no cross-qubit resource coupling, so execution follows exact
//!   per-qubit timelines (a gate starts when all its qubits are free):
//!   1q gates cost one bitstream (10.12 ns) on the MIMD designs and `K`
//!   controller cycles on DigiQ_min, with `K` drawn deterministically
//!   from an empirical length distribution (measured by the real
//!   `calib::min_decomp` search — no SIMD serialization, only longer
//!   decompositions, exactly Table I's trade-off).
//! * **DigiQ_opt** — a 1q gate takes `L ∈ {1,2,3}` cycles of delayed-Ubs
//!   firings, but each group broadcasts only `BS` distinct delays per
//!   cycle: qubits demanding more distinct delays serialize
//!   (`⌈distinct/BS⌉` sub-cycles per firing position). Identical gate
//!   angles snap to shared delays within the §V-A error margin, modelled
//!   by quantizing angles into `angle_bins` classes per frequency group.
//!
//! CZ gates occupy `cz_ns` (3 DigiQ_opt cycles) regardless of design.
//! This is a *statistical* model of the per-gate delay assignments (the
//! exact per-qubit values come from `calib`, but Fig 9 only needs the
//! contention distribution); all draws are deterministic hashes, so runs
//! reproduce exactly. See DESIGN.md.

use crate::delay_model::DelayModel;
use crate::design::{ControllerDesign, SystemConfig};
use qcircuit::ir::{Circuit, Gate};
use qcircuit::schedule::Slot;
use sfq_hw::json::{Json, ToJson};
use std::collections::{HashMap, HashSet};

/// Tunables of the statistical execution model.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecParams {
    /// System configuration (design, groups, timing).
    pub config: SystemConfig,
    /// Empirical DigiQ_min sequence-length distribution (from
    /// `calib::min_decomp`; indexed by a deterministic hash).
    pub min_lengths: Vec<usize>,
    /// ZYZ θ beyond which DigiQ_opt needs `L = 3` firings (§V-A:
    /// near-π rotations).
    pub opt_l3_threshold: f64,
    /// Angle-quantization classes for the delay-sharing margin (§V-A:
    /// "allowing a small error margin when choosing delay values").
    pub angle_bins: usize,
    /// Drift-variation classes: qubits whose basis operations drifted
    /// apart need different delay tuples even for the same logical gate;
    /// the error margin merges them into this many classes per angle bin.
    pub variation_classes: usize,
    /// Hash salt (reproducibility).
    pub seed: u64,
}

impl ExecParams {
    /// Reasonable defaults for a design; `min_lengths` should be replaced
    /// with measured data for DigiQ_min runs (see
    /// [`crate::system::DigiqSystem`]).
    pub fn new(config: SystemConfig) -> Self {
        ExecParams {
            config,
            min_lengths: vec![12, 16, 18, 20, 22, 24, 26, 28],
            opt_l3_threshold: 2.6,
            angle_bins: 48,
            variation_classes: 3,
            seed: 0xD161_0E0C,
        }
    }
}

/// Per-run accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Total execution time, ns.
    pub total_ns: f64,
    /// Controller cycles spent on single-qubit work.
    pub oneq_cycles: u64,
    /// Extra cycles lost to SIMD delay-slot contention (DigiQ_opt only).
    pub serialization_cycles: u64,
    /// Slots processed.
    pub slots: u64,
    /// CZ occupancy time, ns.
    pub cz_ns: f64,
}

impl ToJson for ExecReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("total_ns", self.total_ns.to_json()),
            ("oneq_cycles", self.oneq_cycles.to_json()),
            ("serialization_cycles", self.serialization_cycles.to_json()),
            ("slots", self.slots.to_json()),
            ("cz_ns", self.cz_ns.to_json()),
        ])
    }
}

impl ExecReport {
    /// Reads a report back from its [`ToJson`] form — the inverse of
    /// [`ExecReport::to_json`], used by the sweep-report reader.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "exec report";
        Ok(ExecReport {
            total_ns: j.num_field("total_ns", CTX)?,
            oneq_cycles: j.count_field("oneq_cycles", CTX)?,
            serialization_cycles: j.count_field("serialization_cycles", CTX)?,
            slots: j.count_field("slots", CTX)?,
            cz_ns: j.num_field("cz_ns", CTX)?,
        })
    }
}

/// The per-slot DigiQ_opt cost under the shared delay model: how many
/// sequencer sub-cycles the slowest group needs, how many of those are
/// pure delay-slot contention, and how many CZs the slot carries.
///
/// Exposed so the differential tests
/// (`crates/core/tests/cosim_diff.rs`) can pin the co-simulator's
/// per-slot serialization attribution against the analytic model
/// slot-for-slot, not just in aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptSlotCost {
    /// Sub-cycles of the slowest group (what the slot waits for).
    pub oneq_cycles: u64,
    /// Contention-expanded sub-cycles across all groups and positions
    /// (`Σ ⌈distinct/BS⌉ − 1`).
    pub serialization_cycles: u64,
    /// CZ gates in the slot.
    pub cz_count: u64,
}

/// Computes [`OptSlotCost`] for one schedule slot of a lowered circuit
/// under DigiQ_opt with `bs` broadcast delay slots per cycle.
///
/// # Panics
///
/// Panics if a slot references an out-of-range gate, or the circuit
/// contains non-lowered gates.
pub fn opt_slot_cost(
    circuit: &Circuit,
    slot: &Slot,
    group_of: &[usize],
    model: &DelayModel<'_>,
    bs: usize,
) -> OptSlotCost {
    // Group → firing position → distinct delay classes.
    let mut demands: HashMap<(usize, usize), HashSet<u64>> = HashMap::new();
    let mut cost = OptSlotCost::default();
    for &gi in slot {
        match circuit.gates()[gi] {
            Gate::Cz { .. } => cost.cz_count += 1,
            Gate::OneQ { q, kind } => {
                let group = group_of.get(q).copied().unwrap_or(0);
                for pos in 0..model.firing_count(kind) {
                    let class = model.delay_class(kind, pos, group, q);
                    demands.entry((group, pos)).or_default().insert(class);
                }
            }
            _ => panic!("executor requires a lowered circuit"),
        }
    }
    // Per group: sum over firing positions of the contention-expanded
    // sub-cycles; the slot waits for the slowest group.
    let mut per_group: HashMap<usize, u64> = HashMap::new();
    for ((group, _pos), classes) in &demands {
        let sub = (classes.len() as u64).div_ceil(bs as u64);
        *per_group.entry(*group).or_insert(0) += sub;
        cost.serialization_cycles += sub - 1;
    }
    cost.oneq_cycles = per_group.values().copied().max().unwrap_or(0);
    cost
}

/// Executes a scheduled circuit under the model, returning the report.
///
/// `group_of[q]` gives the SIMD group of physical qubit `q` (qubits in a
/// group share broadcast bitstreams; grouping is by nominal frequency,
/// §IV-A1).
///
/// # Panics
///
/// Panics if a slot references an out-of-range gate, or the circuit
/// contains non-lowered gates.
pub fn execute(
    circuit: &Circuit,
    slots: &[Slot],
    group_of: &[usize],
    params: &ExecParams,
) -> ExecReport {
    qcircuit::lower::assert_lowered(circuit, "executor");
    let cfg = &params.config;
    let cycle = cfg.cycle_ns();
    let model = DelayModel::new(params);
    let mut report = ExecReport::default();

    // Designs without cross-qubit resource coupling: exact per-qubit
    // timelines (gates start when their qubits are free; the schedule's
    // crosstalk constraints are upheld because slots already serialize
    // interfering CZs — we keep their relative order via slot sequencing
    // of the CZ start times).
    if !matches!(cfg.design, ControllerDesign::DigiqOpt { .. }) {
        let mut free_at = vec![0.0f64; circuit.n_qubits()];
        let mut cz_floor = 0.0f64; // enforce slot order among CZs
        for slot in slots {
            let mut slot_cz_end = cz_floor;
            for &gi in slot {
                match circuit.gates()[gi] {
                    Gate::Cz { a, b } => {
                        let start = free_at[a].max(free_at[b]).max(cz_floor);
                        let end = start + cfg.cz_ns;
                        free_at[a] = end;
                        free_at[b] = end;
                        slot_cz_end = slot_cz_end.max(start);
                        report.cz_ns += cfg.cz_ns;
                    }
                    Gate::OneQ { q, kind } => {
                        let dur = match cfg.design {
                            ControllerDesign::ImpossibleMimd | ControllerDesign::SfqMimdNaive => {
                                cfg.bitstream_ticks as f64 * cfg.clock_period_ns
                            }
                            _ => {
                                let k = model.min_depth(kind, q);
                                report.oneq_cycles += k as u64;
                                k as f64 * cycle
                            }
                        };
                        free_at[q] += dur;
                        if matches!(
                            cfg.design,
                            ControllerDesign::ImpossibleMimd | ControllerDesign::SfqMimdNaive
                        ) {
                            report.oneq_cycles += 1;
                        }
                    }
                    _ => panic!("executor requires a lowered circuit"),
                }
            }
            cz_floor = slot_cz_end;
            report.slots += 1;
        }
        report.total_ns = free_at.iter().cloned().fold(0.0, f64::max);
        return report;
    }

    // DigiQ_opt: slot-synchronous SIMD — every slot costs the slowest
    // group's contention-expanded sub-cycles, with CZs occupying their 60
    // ns concurrently.
    let bs = match cfg.design {
        ControllerDesign::DigiqOpt { bs } => bs,
        _ => unreachable!("non-opt designs returned above"),
    };
    for slot in slots {
        let cost = opt_slot_cost(circuit, slot, group_of, &model, bs);
        let mut slot_ns = cost.oneq_cycles as f64 * cycle;
        report.oneq_cycles += cost.oneq_cycles;
        report.serialization_cycles += cost.serialization_cycles;
        if cost.cz_count > 0 {
            slot_ns = slot_ns.max(cfg.cz_ns);
            report.cz_ns += cfg.cz_ns;
        }
        report.total_ns += slot_ns;
        report.slots += 1;
    }
    report
}

/// Convenience for Fig 9: execution time of `circuit` under `design`,
/// normalized to the Impossible MIMD baseline.
pub fn normalized_exec_time(
    circuit: &Circuit,
    slots: &[Slot],
    group_of: &[usize],
    params: &ExecParams,
) -> f64 {
    let this = execute(circuit, slots, group_of, params);
    let mut base_params = params.clone();
    base_params.config.design = ControllerDesign::ImpossibleMimd;
    let base = execute(circuit, slots, group_of, &base_params);
    this.total_ns / base.total_ns.max(f64::MIN_POSITIVE)
}

/// Builds the checkerboard group map used by the paper's evaluation
/// (qubits alternate between `groups` frequency classes over the grid).
pub fn checkerboard_groups(grid_cols: usize, n_qubits: usize, groups: usize) -> Vec<usize> {
    (0..n_qubits)
        .map(|q| {
            let (r, c) = (q / grid_cols, q % grid_cols);
            (r + c) % groups.max(1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::schedule::schedule_crosstalk_aware;
    use qcircuit::topology::Grid;

    fn run(design: ControllerDesign, circuit: &Circuit, grid: &Grid) -> ExecReport {
        let slots = schedule_crosstalk_aware(circuit, grid);
        let groups = checkerboard_groups(grid.cols(), circuit.n_qubits(), 2);
        let mut params = ExecParams::new(SystemConfig::paper_default(design, 2));
        params.config.n_qubits = circuit.n_qubits();
        execute(circuit, &slots, &groups, &params)
    }

    fn parallel_rotations(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.ry(q, 0.1 + 0.05 * q as f64);
        }
        c
    }

    #[test]
    fn mimd_baseline_is_one_bitstream_per_slot() {
        let grid = Grid::new(4, 4);
        let c = parallel_rotations(16);
        let r = run(ControllerDesign::ImpossibleMimd, &c, &grid);
        assert!((r.total_ns - 10.12).abs() < 1e-9, "total {}", r.total_ns);
    }

    #[test]
    fn opt_serializes_distinct_angles() {
        let grid = Grid::new(4, 4);
        let c = parallel_rotations(16); // 16 distinct angles
        let r2 = run(ControllerDesign::DigiqOpt { bs: 2 }, &c, &grid);
        let r16 = run(ControllerDesign::DigiqOpt { bs: 16 }, &c, &grid);
        assert!(
            r2.total_ns > r16.total_ns,
            "BS=2 {} should be slower than BS=16 {}",
            r2.total_ns,
            r16.total_ns
        );
        assert!(r2.serialization_cycles > 0);
    }

    #[test]
    fn opt_shares_identical_gates() {
        let grid = Grid::new(4, 4);
        // Same gate everywhere, drift variation disabled → one delay
        // class → no serialization (the §V-A error-margin limit).
        let mut c = Circuit::new(16);
        for q in 0..16 {
            c.h(q);
        }
        let slots = schedule_crosstalk_aware(&c, &grid);
        let groups = checkerboard_groups(4, 16, 2);
        let mut p = ExecParams::new(SystemConfig::paper_default(
            ControllerDesign::DigiqOpt { bs: 2 },
            2,
        ));
        p.config.n_qubits = 16;
        p.variation_classes = 1;
        let r = execute(&c, &slots, &groups, &p);
        assert_eq!(r.serialization_cycles, 0);
        // H is non-diagonal: L = 2 cycles of 20.32 ns.
        assert!((r.total_ns - 2.0 * 20.32).abs() < 1e-6, "{}", r.total_ns);
        // With drift variation on, the same workload serializes.
        p.variation_classes = 6;
        let r2 = execute(&c, &slots, &groups, &p);
        assert!(r2.serialization_cycles > 0);
    }

    #[test]
    fn diagonal_gates_are_cheap_on_opt() {
        let grid = Grid::new(2, 2);
        let mut c = Circuit::new(4);
        c.rz(0, 0.7);
        let r = run(ControllerDesign::DigiqOpt { bs: 4 }, &c, &grid);
        assert!((r.total_ns - 20.32).abs() < 1e-6, "{}", r.total_ns);
    }

    #[test]
    fn min_charges_decomposition_depth() {
        let grid = Grid::new(2, 2);
        let mut c = Circuit::new(4);
        c.h(0);
        let r = run(ControllerDesign::DigiqMin { bs: 2 }, &c, &grid);
        // K cycles × 10.12 ns, K from the default distribution.
        assert!(r.total_ns >= 12.0 * 10.12 - 1e-6);
        assert!(r.total_ns <= 28.0 * 10.12 + 1e-6);
    }

    #[test]
    fn cz_costs_sixty_ns_everywhere() {
        let grid = Grid::new(2, 2);
        let mut c = Circuit::new(4);
        c.cz(0, 1);
        for d in [
            ControllerDesign::ImpossibleMimd,
            ControllerDesign::DigiqMin { bs: 2 },
            ControllerDesign::DigiqOpt { bs: 8 },
        ] {
            let r = run(d, &c, &grid);
            assert!((r.total_ns - 60.0).abs() < 1e-9, "{d}: {}", r.total_ns);
        }
    }

    #[test]
    fn normalized_time_sane_for_mixed_circuit() {
        let grid = Grid::new(4, 4);
        let mut c = Circuit::new(16);
        for q in 0..16 {
            c.ry(q, 0.2 + 0.03 * q as f64);
        }
        for q in (0..15).step_by(2) {
            c.cz(q, q + 1);
        }
        let slots = schedule_crosstalk_aware(&c, &grid);
        let groups = checkerboard_groups(4, 16, 2);
        let mut p = ExecParams::new(SystemConfig::paper_default(
            ControllerDesign::DigiqOpt { bs: 16 },
            2,
        ));
        p.config.n_qubits = 16;
        let ratio16 = normalized_exec_time(&c, &slots, &groups, &p);
        // CZ time dominates this small circuit: BS=16 sits just above 1×.
        assert!((1.0..12.0).contains(&ratio16), "ratio {ratio16}");
        // BS=2 must serialize the 16 distinct rotations much harder.
        p.config.design = ControllerDesign::DigiqOpt { bs: 2 };
        let ratio2 = normalized_exec_time(&c, &slots, &groups, &p);
        assert!(ratio2 > ratio16, "BS=2 {ratio2} vs BS=16 {ratio16}");
    }

    #[test]
    fn deterministic_given_seed() {
        let grid = Grid::new(4, 4);
        let c = parallel_rotations(16);
        let a = run(ControllerDesign::DigiqOpt { bs: 4 }, &c, &grid);
        let b = run(ControllerDesign::DigiqOpt { bs: 4 }, &c, &grid);
        assert_eq!(a.total_ns, b.total_ns);
    }

    #[test]
    fn checkerboard_group_map() {
        let g = checkerboard_groups(4, 16, 2);
        assert_eq!(g[0], 0);
        assert_eq!(g[1], 1);
        assert_eq!(g[4], 1);
        assert_eq!(g[5], 0);
    }
}
