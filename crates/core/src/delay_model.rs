//! Shared gate → delay-class assignment (§V-A).
//!
//! Both execution-time engines — the *analytic* slot model of
//! [`crate::exec`] and the *cycle-accurate* co-simulator of
//! [`crate::cosim`] — need the same three per-gate decisions:
//!
//! 1. **DigiQ_min / SFQ_MIMD_decomp:** how many controller cycles `K` the
//!    gate's basis decomposition occupies (drawn deterministically from
//!    the empirical `calib::min_decomp` length distribution);
//! 2. **DigiQ_opt:** how many delayed-Ubs firing positions `L ∈ {1,2,3}`
//!    realize the gate (diagonal → 1, generic → 2, near-π → 3);
//! 3. **DigiQ_opt:** which *delay class* each firing position demands —
//!    the §V-A sharing key after angle quantization and drift-variation
//!    merging; gates in the same class share one broadcast delay slot.
//!
//! All three are pure functions of the gate, the qubit, and
//! [`crate::exec::ExecParams`], hashed through the repo's pinned
//! [`qsim::rng::stable_hash`]. Keeping them here — instead of inlined in
//! each engine — is what makes the differential tests
//! (`crates/core/tests/cosim_diff.rs`) meaningful: the two engines agree
//! on *what each gate costs* by construction, so any divergence is a real
//! disagreement between the timing models, not a drifted copy of the
//! draw arithmetic.

use crate::exec::ExecParams;
use qcircuit::ir::OneQ;

/// Stable digest used for every observable draw (lands in golden files).
pub(crate) fn hash_u64(parts: &[u64]) -> u64 {
    qsim::rng::stable_hash(parts)
}

/// θ (ZYZ middle angle) of a 1q gate, cheaply.
pub fn gate_theta(kind: OneQ) -> f64 {
    match kind {
        OneQ::H => std::f64::consts::FRAC_PI_2,
        OneQ::X | OneQ::Y => std::f64::consts::PI,
        OneQ::Z | OneQ::S | OneQ::Sdg | OneQ::T | OneQ::Tdg | OneQ::Rz(_) => 0.0,
        OneQ::Rx(a) | OneQ::Ry(a) => a.abs().min(2.0 * std::f64::consts::PI - a.abs()),
        OneQ::U { theta, .. } => theta.abs(),
    }
}

/// Quantized angle-class of a gate (delay-sharing key).
pub fn gate_bin(kind: OneQ, bins: usize) -> u64 {
    let q = |a: f64| {
        ((a.rem_euclid(2.0 * std::f64::consts::PI)) / (2.0 * std::f64::consts::PI) * bins as f64)
            as u64
    };
    match kind {
        OneQ::H => 1,
        OneQ::X => 2,
        OneQ::Y => 3,
        OneQ::Z => 4,
        OneQ::S => 5,
        OneQ::Sdg => 6,
        OneQ::T => 7,
        OneQ::Tdg => 8,
        OneQ::Rx(a) => 100 + q(a),
        OneQ::Ry(a) => 100 + bins as u64 + q(a),
        OneQ::Rz(a) => 100 + 2 * bins as u64 + q(a),
        OneQ::U { theta, phi, lam } => {
            1000 + q(theta) * (bins as u64 * bins as u64) + q(phi) * bins as u64 + q(lam)
        }
    }
}

/// The per-gate cost/delay assignment view over one [`ExecParams`]. Both
/// execution engines construct one of these and take every draw through
/// it, so identical params guarantee identical draws.
#[derive(Debug, Clone, Copy)]
pub struct DelayModel<'a> {
    seed: u64,
    angle_bins: usize,
    variation_classes: usize,
    opt_l3_threshold: f64,
    min_lengths: &'a [usize],
}

impl<'a> DelayModel<'a> {
    /// Borrows the assignment-relevant fields of `params`.
    pub fn new(params: &'a ExecParams) -> Self {
        DelayModel {
            seed: params.seed,
            angle_bins: params.angle_bins,
            variation_classes: params.variation_classes,
            opt_l3_threshold: params.opt_l3_threshold,
            min_lengths: &params.min_lengths,
        }
    }

    /// Decomposition depth `K` (controller cycles) charged to a 1q gate on
    /// the discrete-basis designs (DigiQ_min, SFQ_MIMD_decomp): a
    /// deterministic draw from the empirical length distribution, keyed by
    /// the gate's angle class and a mild per-qubit variation.
    pub fn min_depth(&self, kind: OneQ, q: usize) -> usize {
        let idx = hash_u64(&[
            self.seed,
            gate_bin(kind, self.angle_bins),
            q as u64 % 7, // mild per-qubit variation
        ]) as usize
            % self.min_lengths.len().max(1);
        self.min_lengths.get(idx).copied().unwrap_or(1)
    }

    /// Number of delayed-Ubs firing positions `L ∈ {1, 2, 3}` a 1q gate
    /// needs on DigiQ_opt (§V-A: diagonal gates absorb into one firing,
    /// near-π rotations need three).
    pub fn firing_count(&self, kind: OneQ) -> usize {
        let theta = gate_theta(kind);
        if theta == 0.0 {
            1 // diagonal: single absorbed firing
        } else if theta > self.opt_l3_threshold {
            3
        } else {
            2
        }
    }

    /// The delay class a gate demands at firing position `pos` on
    /// DigiQ_opt: gates mapping to the same class share one of the `BS`
    /// broadcast delay slots that cycle (§V-A error margin), distinct
    /// classes serialize.
    pub fn delay_class(&self, kind: OneQ, pos: usize, group: usize, q: usize) -> u64 {
        hash_u64(&[
            self.seed,
            gate_bin(kind, self.angle_bins),
            pos as u64,
            (group % 2) as u64, // frequency class
            // drift-forced per-qubit variation
            (q % self.variation_classes.max(1)) as u64,
        ])
    }

    /// The empirical DigiQ_min length distribution backing
    /// [`DelayModel::min_depth`].
    pub fn min_lengths(&self) -> &[usize] {
        self.min_lengths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{ControllerDesign, SystemConfig};

    fn params() -> ExecParams {
        ExecParams::new(SystemConfig::paper_default(
            ControllerDesign::DigiqOpt { bs: 8 },
            2,
        ))
    }

    #[test]
    fn min_depth_draws_from_the_distribution() {
        let p = params();
        let m = DelayModel::new(&p);
        for q in 0..20 {
            let k = m.min_depth(OneQ::H, q);
            assert!(p.min_lengths.contains(&k), "depth {k} not in distribution");
        }
        // Deterministic, and periodic in the 7-class qubit variation.
        assert_eq!(m.min_depth(OneQ::H, 3), m.min_depth(OneQ::H, 3));
        assert_eq!(m.min_depth(OneQ::H, 3), m.min_depth(OneQ::H, 10));
    }

    #[test]
    fn firing_counts_follow_theta() {
        let p = params();
        let m = DelayModel::new(&p);
        assert_eq!(m.firing_count(OneQ::Rz(0.7)), 1, "diagonal absorbs");
        assert_eq!(m.firing_count(OneQ::H), 2);
        assert_eq!(m.firing_count(OneQ::X), 3, "π rotation needs 3 firings");
    }

    #[test]
    fn delay_classes_share_and_split() {
        let p = params();
        let m = DelayModel::new(&p);
        // Same gate, same variation class, same frequency class → shared.
        assert_eq!(
            m.delay_class(OneQ::H, 0, 0, 0),
            m.delay_class(OneQ::H, 0, 2, 3)
        );
        // Different firing position or angle class → distinct.
        assert_ne!(
            m.delay_class(OneQ::H, 0, 0, 0),
            m.delay_class(OneQ::H, 1, 0, 0)
        );
        assert_ne!(
            m.delay_class(OneQ::H, 0, 0, 0),
            m.delay_class(OneQ::X, 0, 0, 0)
        );
    }
}
