//! Batched, multi-threaded evaluation engine over the unified artifact
//! store.
//!
//! The paper's evaluation (Fig 8–10, Tables I–II) is one large sweep over
//! design points × benchmarks × drift seeds. Run naïvely, every point
//! re-synthesizes hardware, re-compiles circuits and re-builds sequence
//! databases from scratch; this module turns the sweep into a batched
//! pipeline instead:
//!
//! * a declarative [`SweepSpec`] enumerates the jobs (design-major, then
//!   benchmark, then seed — the job index is the merge order);
//! * [`EvalEngine::run`] shards jobs across `std::thread::scope` workers
//!   pulling from an atomic counter;
//! * expensive shared artifacts are memoized build-once in the engine's
//!   [`ArtifactStore`] (see [`crate::store`]) so no artifact is built
//!   twice across the sweep: synthesized [`DesignHardware`] per
//!   (design, groups), generated benchmark circuits per
//!   (benchmark, scale), compiled [`CompileArtifact`]s at
//!   **pipeline-stage granularity** — every pass of the shared
//!   [`qcircuit::pipeline::Pipeline`] caches its output under a chained
//!   stable stage key ([`Circuit::cache_key`] / `Layout::cache_key` /
//!   pass fingerprints), so lowered and routed circuits are reused not
//!   just across designs and seeds but across pipeline configurations
//!   sharing a prefix (e.g. two schedulers over one routed circuit) —
//!   sequence databases / length distributions per [`MinBasisKind`],
//!   Impossible-MIMD baselines, and co-simulation reports. With a
//!   disk-backed store ([`StoreConfig::cache_dir`], `--cache-dir`),
//!   compiled stages, baselines and co-simulations additionally persist
//!   across processes, so a second run warm-starts with **zero pass
//!   builds**; with [`EvalEngine::run_journaled`] a sweep journals every
//!   completed job and an interrupted run resumes (`sweep --resume`)
//!   byte-identically to an uninterrupted one.
//!
//! Per-pass cache accounting lives in [`PassCacheStats`]
//! ([`EvalEngine::pass_cache_stats`]) and store-wide counters in
//! [`EvalEngine::store_stats`]; like the co-simulation counters they are
//! kept out of [`CacheStats`] so the serialized sweep report — and the
//! `tests/golden/engine_smoke.json` golden — is byte-for-byte unchanged
//! by the store refactor ([`CacheStats::compile_hits`] /
//! `compile_misses` account the final pipeline stage, numerically
//! identical to the historical whole-compile accounting).
//!
//! Results are **deterministic regardless of worker count**: jobs are
//! pure functions of the spec (per-job exec seeds are derived by hashing
//! the spec's base seed with the job's drift seed), artifact construction
//! is deterministic, and records merge in job-index order. A sweep run
//! with 1 worker is byte-identical — serialized through
//! [`sfq_hw::json`] — to the same sweep with N workers, and cache hits
//! never change results versus a cold run (see
//! `crates/core/tests/engine_determinism.rs`). Under the default
//! in-memory unbounded store, cache accounting is deterministic too;
//! [`EvalEngine::cold_cache_stats`] computes it as a pure function of
//! the spec (pinned equal to a live cold run by tests), which is what a
//! resumed sweep reports so resumption never changes the bytes.
//!
//! ```
//! use digiq_core::design::ControllerDesign;
//! use digiq_core::engine::{EvalEngine, SweepSpec};
//! use qcircuit::bench::Benchmark;
//! use sfq_hw::json::ToJson;
//!
//! let spec = SweepSpec::small_grid(
//!     vec![ControllerDesign::DigiqOpt { bs: 8 }.into()],
//!     &[Benchmark::Bv],
//!     4,
//!     4,
//! );
//! let engine = EvalEngine::new(Default::default());
//! let report = engine.run(&spec, 2);
//! assert_eq!(report.jobs.len(), 1);
//! assert!(report.jobs[0].report.normalized_time >= 1.0);
//! let json = report.to_json_string();
//! assert_eq!(digiq_core::engine::SweepReport::parse(&json), Ok(report));
//! ```

use crate::cosim::{self, CosimParams, CosimReport};
use crate::design::{ControllerDesign, SystemConfig};
use crate::exec::{checkerboard_groups, execute, ExecParams, ExecReport};
use crate::hardware::{build_hardware, DesignHardware};
use crate::store::{
    self, lock_unpoisoned, ns, ArtifactStore, JobClaims, StoreConfig, StoreStats, SweepJournal,
};
use crate::system::{measured_min_lengths_with_db, BenchmarkReport, MinBasisKind};
use calib::min_decomp::{SequenceDb, SharedSequenceDb};
use qcircuit::bench::Benchmark;
use qcircuit::ir::Circuit;
use qcircuit::mapping::Layout;
use qcircuit::pipeline::{
    CompileArtifact, PassMetrics, PipelineConfig, RouteStrategy, ScheduleStrategy,
};
use qcircuit::topology::Grid;
use sfq_hw::cost::CostModel;
use sfq_hw::json::{Json, ToJson};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The number of workers a sweep uses when the caller does not care:
/// every available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map: `f(i, &items[i])` runs on a pool of
/// `workers` scoped threads pulling indices from an atomic counter, and
/// the results are returned **in input order** regardless of worker count
/// or scheduling — the merge step every deterministic sweep binary uses.
///
/// # Panics
///
/// Propagates any panic raised inside `f`.
pub fn par_map_ordered<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *lock_unpoisoned(&slots[i]) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("worker completed every claimed job")
        })
        .collect()
}

/// Scale at which a benchmark instance is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchScale {
    /// The paper-scale instance ([`Benchmark::paper_scale`], 32×32 grid).
    Paper,
    /// A reduced instance fitting `max_qubits` ([`Benchmark::scaled`]).
    Small {
        /// Qubit budget of the instance.
        max_qubits: usize,
    },
}

/// One benchmark axis entry of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BenchmarkSpec {
    /// Which Table IV benchmark.
    pub bench: Benchmark,
    /// At which scale.
    pub scale: BenchScale,
}

/// One design axis entry of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// The controller architecture.
    pub design: ControllerDesign,
    /// Frequency-group count `G`.
    pub groups: usize,
}

impl From<ControllerDesign> for DesignPoint {
    /// A design at the paper's default `G = 2`.
    fn from(design: ControllerDesign) -> Self {
        DesignPoint { design, groups: 2 }
    }
}

/// A declarative sweep: designs × benchmarks × seeds on one device grid.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Design axis.
    pub designs: Vec<DesignPoint>,
    /// Benchmark axis.
    pub benchmarks: Vec<BenchmarkSpec>,
    /// Drift-seed axis (each value yields one job per design × benchmark;
    /// per-job exec seeds are `hash(base_seed, seed)`).
    pub seeds: Vec<u64>,
    /// Device grid rows.
    pub grid_rows: usize,
    /// Device grid columns.
    pub grid_cols: usize,
    /// Also synthesize (and cache) each design's hardware, recording its
    /// power in the job records.
    pub synthesize_hardware: bool,
    /// Salt mixed into every derived per-job seed.
    pub base_seed: u64,
    /// Compile-pipeline strategy selection (routing / scheduling); the
    /// default is the paper pipeline every golden file pins.
    pub pipeline: PipelineConfig,
}

/// One enumerated job of a sweep (a single design × benchmark × seed
/// point, with its fixed merge index).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobSpec {
    /// Merge position in the report.
    pub index: usize,
    /// Design point.
    pub point: DesignPoint,
    /// Benchmark instance.
    pub bench: BenchmarkSpec,
    /// Drift seed from the spec.
    pub seed: u64,
}

impl SweepSpec {
    /// A small-grid sweep over `designs` × `benchmarks` with one seed:
    /// every benchmark is generated at the grid's qubit budget.
    pub fn small_grid(
        designs: Vec<DesignPoint>,
        benchmarks: &[Benchmark],
        grid_rows: usize,
        grid_cols: usize,
    ) -> Self {
        let max_qubits = grid_rows * grid_cols;
        SweepSpec {
            designs,
            benchmarks: benchmarks
                .iter()
                .map(|&bench| BenchmarkSpec {
                    bench,
                    scale: BenchScale::Small { max_qubits },
                })
                .collect(),
            seeds: vec![0],
            grid_rows,
            grid_cols,
            synthesize_hardware: false,
            base_seed: 0xD161_5EED,
            pipeline: PipelineConfig::default(),
        }
    }

    /// The four Table I designs at the paper's default group count.
    pub fn table_one_designs() -> Vec<DesignPoint> {
        vec![
            DesignPoint {
                design: ControllerDesign::SfqMimdNaive,
                groups: 1,
            },
            DesignPoint {
                design: ControllerDesign::SfqMimdDecomp,
                groups: 1,
            },
            ControllerDesign::DigiqMin { bs: 2 }.into(),
            ControllerDesign::DigiqOpt { bs: 8 }.into(),
        ]
    }

    /// The five configurations plotted in Fig 9.
    pub fn fig9_designs() -> Vec<DesignPoint> {
        vec![
            ControllerDesign::DigiqMin { bs: 2 }.into(),
            ControllerDesign::DigiqMin { bs: 4 }.into(),
            ControllerDesign::DigiqOpt { bs: 4 }.into(),
            ControllerDesign::DigiqOpt { bs: 8 }.into(),
            ControllerDesign::DigiqOpt { bs: 16 }.into(),
        ]
    }

    /// Replaces the drift-seed axis.
    ///
    /// # Panics
    ///
    /// Panics on an empty axis, or on seeds at or above 2⁵³ — report
    /// seeds serialize as JSON numbers, and larger values would silently
    /// lose precision and break the `parse(serialize(x)) == x` guarantee.
    #[must_use]
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        assert!(!seeds.is_empty(), "a sweep needs at least one seed");
        assert!(
            seeds.iter().all(|&s| s < (1u64 << 53)),
            "seeds must stay below 2^53 to round-trip exactly through JSON"
        );
        self.seeds = seeds;
        self
    }

    /// Enables hardware synthesis for every buildable design point.
    #[must_use]
    pub fn with_hardware(mut self) -> Self {
        self.synthesize_hardware = true;
        self
    }

    /// Replaces the compile-pipeline strategy selection.
    #[must_use]
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Total job count (the full cross product).
    pub fn job_count(&self) -> usize {
        self.designs.len() * self.benchmarks.len() * self.seeds.len()
    }

    /// Stable fingerprint of the whole sweep definition — identical
    /// across processes and toolchains, distinct for any change to an
    /// axis, the grid, the base seed, or the pipeline strategy. Keys the
    /// on-disk [`SweepJournal`], so a resumed sweep can never replay
    /// another spec's completed jobs.
    pub fn stable_key(&self) -> u64 {
        let mut h = qsim::rng::StableHasher::new();
        h.write_usize(self.grid_rows);
        h.write_usize(self.grid_cols);
        h.write_u64(self.base_seed);
        h.write_u8(self.synthesize_hardware as u8);
        h.write_u64(self.pipeline.fingerprint());
        h.write_usize(self.designs.len());
        for point in &self.designs {
            let [d, bs] = store::design_words(point.design);
            h.write_u64(d);
            h.write_u64(bs);
            h.write_usize(point.groups);
        }
        h.write_usize(self.benchmarks.len());
        for b in &self.benchmarks {
            h.write_bytes(b.bench.name().as_bytes());
            match b.scale {
                BenchScale::Paper => h.write_u8(0),
                BenchScale::Small { max_qubits } => {
                    h.write_u8(1);
                    h.write_usize(max_qubits);
                }
            }
        }
        h.write_usize(self.seeds.len());
        for &s in &self.seeds {
            h.write_u64(s);
        }
        h.finish()
    }

    /// The 2-design × 2-benchmark smoke sweep on a 4×4 grid that
    /// `tests/golden/engine_smoke.json` pins byte-for-byte — `sweep
    /// --smoke`, `scripts/ci.sh --engine-smoke` and the digiq-serve
    /// byte-identity tests all build exactly this spec.
    pub fn smoke() -> Self {
        SweepSpec::small_grid(
            vec![
                ControllerDesign::SfqMimdNaive.into(),
                ControllerDesign::DigiqOpt { bs: 8 }.into(),
            ],
            &[Benchmark::Bv, Benchmark::Qgan],
            4,
            4,
        )
    }

    /// The co-simulation smoke sweep that `tests/golden/cosim_smoke.json`
    /// pins byte-for-byte (`cosim --smoke`, `scripts/ci.sh
    /// --cosim-smoke`, and the serve cosim identity test).
    pub fn cosim_smoke() -> Self {
        SweepSpec::small_grid(
            vec![
                ControllerDesign::DigiqMin { bs: 2 }.into(),
                ControllerDesign::DigiqOpt { bs: 8 }.into(),
            ],
            &[Benchmark::Bv, Benchmark::Qgan],
            4,
            4,
        )
    }

    /// Reads a spec back from its [`ToJson`] form, enforcing the
    /// plausibility bounds a network-facing server needs: non-empty
    /// axes, at most 4096 entries per design/benchmark axis, at most
    /// 65536 seeds (each below 2⁵³, the JSON round-trip bound), at most
    /// 2¹⁶ grid sites, and group counts in `1..=4096`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field, or
    /// the violated bound.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "sweep spec";
        const MAX_AXIS: usize = 4096;
        const MAX_SEEDS: usize = 65_536;
        const MAX_SITES: u64 = 1 << 16;

        let mut designs = Vec::new();
        for d in j.arr_field("designs", CTX)? {
            let design = ControllerDesign::from_json(
                d.get("design").ok_or("design point missing `design`")?,
            )?;
            let groups = d.count_field("groups", "design point")? as usize;
            if !(1..=MAX_AXIS).contains(&groups) {
                return Err(format!(
                    "design point `groups` out of range 1..=4096: {groups}"
                ));
            }
            designs.push(DesignPoint { design, groups });
        }
        let mut benchmarks = Vec::new();
        for b in j.arr_field("benchmarks", CTX)? {
            let name = b.str_field("bench", "benchmark spec")?;
            let bench =
                Benchmark::from_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
            let scale = match b.get("scale") {
                Some(Json::Str(s)) if s == "paper" => BenchScale::Paper,
                Some(s @ Json::Obj(_)) => BenchScale::Small {
                    max_qubits: s.count_field("max_qubits", "benchmark scale")? as usize,
                },
                _ => {
                    return Err(
                        "benchmark spec missing `scale` (\"paper\" or {max_qubits})".to_string()
                    )
                }
            };
            benchmarks.push(BenchmarkSpec { bench, scale });
        }
        let mut seeds = Vec::new();
        for s in j.arr_field("seeds", CTX)? {
            match s.as_f64() {
                Some(x) if x >= 0.0 && x.fract() == 0.0 && x < 9_007_199_254_740_992.0 => {
                    seeds.push(x as u64);
                }
                _ => {
                    return Err(
                        "sweep spec seeds must be non-negative integers below 2^53".to_string()
                    )
                }
            }
        }
        if designs.is_empty() || benchmarks.is_empty() || seeds.is_empty() {
            return Err("sweep spec axes must be non-empty".to_string());
        }
        if designs.len() > MAX_AXIS || benchmarks.len() > MAX_AXIS || seeds.len() > MAX_SEEDS {
            return Err(
                "sweep spec axis too large (designs/benchmarks <= 4096, seeds <= 65536)"
                    .to_string(),
            );
        }
        let grid_rows = j.count_field("grid_rows", CTX)?;
        let grid_cols = j.count_field("grid_cols", CTX)?;
        if grid_rows == 0 || grid_cols == 0 || grid_rows * grid_cols > MAX_SITES {
            return Err(format!(
                "sweep spec grid out of range (1..=2^16 sites): {grid_rows}x{grid_cols}"
            ));
        }
        let p = j.get("pipeline").ok_or("sweep spec missing `pipeline`")?;
        let mut router = RouteStrategy::parse(p.str_field("router", "pipeline config")?)?;
        if let RouteStrategy::Lookahead { window } = &mut router {
            if let Some(w) = p.get("window") {
                *window = w
                    .as_f64()
                    .filter(|x| *x >= 1.0 && x.fract() == 0.0 && *x <= MAX_SITES as f64)
                    .ok_or("pipeline config `window` must be an integer in 1..=2^16")?
                    as usize;
            }
        }
        let mut pipeline = PipelineConfig::default()
            .with_router(router)
            .with_scheduler(ScheduleStrategy::parse(
                p.str_field("scheduler", "pipeline config")?,
            )?);
        pipeline.fuse = p.bool_field("fuse", "pipeline config")?;
        Ok(SweepSpec {
            designs,
            benchmarks,
            seeds,
            grid_rows: grid_rows as usize,
            grid_cols: grid_cols as usize,
            synthesize_hardware: j.bool_field("synthesize_hardware", CTX)?,
            base_seed: j.count_field("base_seed", CTX)?,
            pipeline,
        })
    }

    /// Parses a serialized spec (the inverse of
    /// [`ToJson::to_json_string`]) under the [`SweepSpec::from_json`]
    /// bounds.
    ///
    /// # Errors
    ///
    /// Returns the JSON syntax error or the first structural mismatch.
    pub fn parse(text: &str) -> Result<Self, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        SweepSpec::from_json(&j)
    }

    /// Enumerates the jobs in merge order (design-major, then benchmark,
    /// then seed).
    pub fn jobs(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::with_capacity(self.job_count());
        for &point in &self.designs {
            for &bench in &self.benchmarks {
                for &seed in &self.seeds {
                    jobs.push(JobSpec {
                        index: jobs.len(),
                        point,
                        bench,
                        seed,
                    });
                }
            }
        }
        jobs
    }
}

impl ToJson for SweepSpec {
    /// The wire form digiq-serve carries: axes spelled out field by
    /// field, the pipeline by strategy name (plus the lookahead window
    /// when it applies) — `parse(to_json_string(spec)) == spec` for any
    /// spec within the [`SweepSpec::from_json`] bounds.
    fn to_json(&self) -> Json {
        let designs: Vec<Json> = self
            .designs
            .iter()
            .map(|d| {
                Json::obj([
                    ("design", d.design.to_json()),
                    ("groups", d.groups.to_json()),
                ])
            })
            .collect();
        let benchmarks: Vec<Json> = self
            .benchmarks
            .iter()
            .map(|b| {
                let scale = match b.scale {
                    BenchScale::Paper => Json::Str("paper".to_string()),
                    BenchScale::Small { max_qubits } => {
                        Json::obj([("max_qubits", max_qubits.to_json())])
                    }
                };
                Json::obj([("bench", b.bench.name().to_json()), ("scale", scale)])
            })
            .collect();
        let mut pipeline = vec![("router", self.pipeline.router.name().to_json())];
        if let RouteStrategy::Lookahead { window } = self.pipeline.router {
            pipeline.push(("window", window.to_json()));
        }
        pipeline.push(("scheduler", self.pipeline.scheduler.name().to_json()));
        pipeline.push(("fuse", self.pipeline.fuse.to_json()));
        Json::obj([
            ("designs", Json::Arr(designs)),
            ("benchmarks", Json::Arr(benchmarks)),
            ("seeds", self.seeds.to_json()),
            ("grid_rows", self.grid_rows.to_json()),
            ("grid_cols", self.grid_cols.to_json()),
            ("synthesize_hardware", self.synthesize_hardware.to_json()),
            ("base_seed", self.base_seed.to_json()),
            ("pipeline", Json::obj(pipeline)),
        ])
    }
}

/// Deterministic seed derivation — the repo's pinned stable hash of
/// `(base, salt)`, identical across processes and toolchains (derived
/// seeds reach golden files through the executor).
pub fn derive_seed(base: u64, salt: u64) -> u64 {
    qsim::rng::stable_hash(&[base, salt])
}

/// Cache accounting of one sweep run (deterministic for a fixed spec
/// under the default unbounded in-memory store — misses count distinct
/// content keys, hits count the remaining lookups; see
/// [`EvalEngine::cold_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Benchmark-circuit cache hits.
    pub circuit_hits: u64,
    /// Benchmark-circuit generations.
    pub circuit_misses: u64,
    /// Compiled-circuit cache hits.
    pub compile_hits: u64,
    /// Lower/route/schedule pipeline executions.
    pub compile_misses: u64,
    /// Hardware cache hits.
    pub hardware_hits: u64,
    /// Hardware syntheses.
    pub hardware_misses: u64,
    /// Sequence-database cache hits.
    pub seq_db_hits: u64,
    /// Sequence-database builds.
    pub seq_db_misses: u64,
    /// Length-distribution cache hits.
    pub min_lengths_hits: u64,
    /// Length-distribution measurements.
    pub min_lengths_misses: u64,
    /// Baseline-execution cache hits.
    pub baseline_hits: u64,
    /// Baseline (Impossible MIMD) executions.
    pub baseline_misses: u64,
}

impl CacheStats {
    /// Component-wise difference (`self − earlier`), for snapshotting one
    /// run out of a long-lived engine.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            circuit_hits: self.circuit_hits - earlier.circuit_hits,
            circuit_misses: self.circuit_misses - earlier.circuit_misses,
            compile_hits: self.compile_hits - earlier.compile_hits,
            compile_misses: self.compile_misses - earlier.compile_misses,
            hardware_hits: self.hardware_hits - earlier.hardware_hits,
            hardware_misses: self.hardware_misses - earlier.hardware_misses,
            seq_db_hits: self.seq_db_hits - earlier.seq_db_hits,
            seq_db_misses: self.seq_db_misses - earlier.seq_db_misses,
            min_lengths_hits: self.min_lengths_hits - earlier.min_lengths_hits,
            min_lengths_misses: self.min_lengths_misses - earlier.min_lengths_misses,
            baseline_hits: self.baseline_hits - earlier.baseline_hits,
            baseline_misses: self.baseline_misses - earlier.baseline_misses,
        }
    }

    /// Total lookups that reused an artifact.
    pub fn total_hits(&self) -> u64 {
        self.circuit_hits
            + self.compile_hits
            + self.hardware_hits
            + self.seq_db_hits
            + self.min_lengths_hits
            + self.baseline_hits
    }

    /// Total artifacts built.
    pub fn total_misses(&self) -> u64 {
        self.circuit_misses
            + self.compile_misses
            + self.hardware_misses
            + self.seq_db_misses
            + self.min_lengths_misses
            + self.baseline_misses
    }
}

const CACHE_FIELDS: [&str; 12] = [
    "circuit_hits",
    "circuit_misses",
    "compile_hits",
    "compile_misses",
    "hardware_hits",
    "hardware_misses",
    "seq_db_hits",
    "seq_db_misses",
    "min_lengths_hits",
    "min_lengths_misses",
    "baseline_hits",
    "baseline_misses",
];

impl CacheStats {
    fn field(&self, name: &str) -> u64 {
        match name {
            "circuit_hits" => self.circuit_hits,
            "circuit_misses" => self.circuit_misses,
            "compile_hits" => self.compile_hits,
            "compile_misses" => self.compile_misses,
            "hardware_hits" => self.hardware_hits,
            "hardware_misses" => self.hardware_misses,
            "seq_db_hits" => self.seq_db_hits,
            "seq_db_misses" => self.seq_db_misses,
            "min_lengths_hits" => self.min_lengths_hits,
            "min_lengths_misses" => self.min_lengths_misses,
            "baseline_hits" => self.baseline_hits,
            "baseline_misses" => self.baseline_misses,
            _ => unreachable!("unknown cache field"),
        }
    }

    fn field_mut(&mut self, name: &str) -> &mut u64 {
        match name {
            "circuit_hits" => &mut self.circuit_hits,
            "circuit_misses" => &mut self.circuit_misses,
            "compile_hits" => &mut self.compile_hits,
            "compile_misses" => &mut self.compile_misses,
            "hardware_hits" => &mut self.hardware_hits,
            "hardware_misses" => &mut self.hardware_misses,
            "seq_db_hits" => &mut self.seq_db_hits,
            "seq_db_misses" => &mut self.seq_db_misses,
            "min_lengths_hits" => &mut self.min_lengths_hits,
            "min_lengths_misses" => &mut self.min_lengths_misses,
            "baseline_hits" => &mut self.baseline_hits,
            "baseline_misses" => &mut self.baseline_misses,
            _ => unreachable!("unknown cache field"),
        }
    }

    /// Reads the stats back from their [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let mut out = CacheStats::default();
        for name in CACHE_FIELDS {
            *out.field_mut(name) = j.count_field(name, "cache stats")?;
        }
        Ok(out)
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        Json::obj(CACHE_FIELDS.map(|name| (name, self.field(name).to_json())))
    }
}

/// One merged sweep result row.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Controller design.
    pub design: ControllerDesign,
    /// Group count `G`.
    pub groups: usize,
    /// Benchmark display name.
    pub benchmark: String,
    /// Width of the generated benchmark instance.
    pub n_qubits: usize,
    /// Drift seed of this job.
    pub seed: u64,
    /// Synthesized power, W (present when the spec requested hardware and
    /// the design is buildable).
    pub power_w: Option<f64>,
    /// The full evaluation report.
    pub report: BenchmarkReport,
}

impl ToJson for JobRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("design", self.design.to_json()),
            ("groups", self.groups.to_json()),
            ("benchmark", self.benchmark.to_json()),
            ("n_qubits", self.n_qubits.to_json()),
            ("seed", self.seed.to_json()),
            ("power_w", self.power_w.to_json()),
            ("report", self.report.to_json()),
        ])
    }
}

impl JobRecord {
    /// Reads a record back from its [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "job record";
        let power_w = match j.get("power_w") {
            None => return Err("job record missing `power_w`".to_string()),
            Some(Json::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or("job record `power_w` must be null or a number")?,
            ),
        };
        Ok(JobRecord {
            design: ControllerDesign::from_json(
                j.get("design").ok_or("job record missing `design`")?,
            )?,
            groups: j.count_field("groups", CTX)? as usize,
            benchmark: j.str_field("benchmark", CTX)?.to_string(),
            n_qubits: j.count_field("n_qubits", CTX)? as usize,
            seed: j.count_field("seed", CTX)?,
            power_w,
            report: BenchmarkReport::from_json(
                j.get("report").ok_or("job record missing `report`")?,
            )?,
        })
    }
}

/// The aggregated result of one sweep, serializable through
/// [`sfq_hw::json`] and readable back via [`SweepReport::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Device grid rows.
    pub grid_rows: usize,
    /// Device grid columns.
    pub grid_cols: usize,
    /// One record per job, in merge (job-index) order.
    pub jobs: Vec<JobRecord>,
    /// Cache accounting for this run.
    pub cache: CacheStats,
}

impl ToJson for SweepReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("grid_rows", self.grid_rows.to_json()),
            ("grid_cols", self.grid_cols.to_json()),
            ("jobs", self.jobs.to_json()),
            ("cache", self.cache.to_json()),
        ])
    }
}

impl SweepReport {
    /// Reads a report back from its [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "sweep report";
        let jobs = match j.get("jobs") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(JobRecord::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("sweep report missing array `jobs`".to_string()),
        };
        Ok(SweepReport {
            grid_rows: j.count_field("grid_rows", CTX)? as usize,
            grid_cols: j.count_field("grid_cols", CTX)? as usize,
            jobs,
            cache: CacheStats::from_json(j.get("cache").ok_or("sweep report missing `cache`")?)?,
        })
    }

    /// Parses a serialized report (the inverse of
    /// [`ToJson::to_json_string`]).
    ///
    /// # Errors
    ///
    /// Returns the JSON syntax error or the first structural mismatch.
    pub fn parse(text: &str) -> Result<Self, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        SweepReport::from_json(&j)
    }
}

/// Per-pass build accounting accumulated on stage-cache misses (the only
/// time a pass actually runs inside the engine).
#[derive(Debug, Clone, Copy, Default)]
struct PassBuildAgg {
    wall_ns: f64,
    gates_in: u64,
    gates_out: u64,
    swaps_added: u64,
    slots_out: u64,
}

/// Cache accounting of one pipeline stage: the per-pass counters behind
/// [`EvalEngine::pass_cache_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct PassCacheStat {
    /// Stage label (`lower`, `route`, `lower_swaps`, `schedule`, …).
    pub pass: String,
    /// Lookups that reused a cached stage artifact.
    pub hits: u64,
    /// Lookups that ran the pass.
    pub misses: u64,
    /// Total wall-clock spent running the pass (misses only), ns.
    pub wall_ns: f64,
    /// Total gates entering the pass across builds.
    pub gates_in: u64,
    /// Total gates leaving the pass across builds.
    pub gates_out: u64,
    /// Total SWAPs the pass inserted across builds.
    pub swaps_added: u64,
    /// Total slots the pass emitted across builds.
    pub slots_out: u64,
}

impl ToJson for PassCacheStat {
    fn to_json(&self) -> Json {
        Json::obj([
            ("pass", self.pass.to_json()),
            ("hits", self.hits.to_json()),
            ("misses", self.misses.to_json()),
            ("wall_ns", self.wall_ns.to_json()),
            ("gates_in", self.gates_in.to_json()),
            ("gates_out", self.gates_out.to_json()),
            ("swaps_added", self.swaps_added.to_json()),
            ("slots_out", self.slots_out.to_json()),
        ])
    }
}

impl PassCacheStat {
    /// Reads a stat back from its [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "pass cache stat";
        Ok(PassCacheStat {
            pass: j.str_field("pass", CTX)?.to_string(),
            hits: j.count_field("hits", CTX)?,
            misses: j.count_field("misses", CTX)?,
            wall_ns: j.num_field("wall_ns", CTX)?,
            gates_in: j.count_field("gates_in", CTX)?,
            gates_out: j.count_field("gates_out", CTX)?,
            swaps_added: j.count_field("swaps_added", CTX)?,
            slots_out: j.count_field("slots_out", CTX)?,
        })
    }
}

/// Per-pass cache accounting of an engine, label-sorted. Like
/// [`EvalEngine::cosim_cache_stats`], this lives **outside**
/// [`CacheStats`] so the serialized sweep report and its golden file are
/// unchanged by stage-granular caching; hit/miss totals are
/// deterministic for a fixed job set regardless of worker count
/// (wall-clock totals are not).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PassCacheStats {
    /// One entry per stage label that ran at least one lookup.
    pub passes: Vec<PassCacheStat>,
}

impl PassCacheStats {
    /// The entry for a stage label, if that stage ever ran.
    pub fn get(&self, pass: &str) -> Option<&PassCacheStat> {
        self.passes.iter().find(|p| p.pass == pass)
    }

    /// Reads the stats back from their [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        let passes = match j.get("passes") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(PassCacheStat::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("pass cache stats missing array `passes`".to_string()),
        };
        Ok(PassCacheStats { passes })
    }

    /// Parses serialized stats (the inverse of [`ToJson::to_json_string`]).
    ///
    /// # Errors
    ///
    /// Returns the JSON syntax error or the first structural mismatch.
    pub fn parse(text: &str) -> Result<Self, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        PassCacheStats::from_json(&j)
    }
}

impl ToJson for PassCacheStats {
    fn to_json(&self) -> Json {
        Json::obj([("passes", self.passes.to_json())])
    }
}

/// The batched evaluation engine: holds the cost model and the unified
/// [`ArtifactStore`] every artifact memoizes into. Cheap to share behind
/// `&self` — all methods are thread-safe — and long-lived engines keep
/// their store warm across [`EvalEngine::run`] calls. Engines built over
/// a disk-backed store ([`EvalEngine::with_store`]) additionally
/// warm-start compiled stages, baselines and co-simulations from a
/// previous process. Multi-tenant drivers (the `digiq-serve` daemon)
/// share one engine across worker threads and open an [`EvalSession`]
/// per request for isolated accounting.
#[derive(Debug)]
pub struct EvalEngine {
    model: CostModel,
    /// The unified artifact store (shareable with `DigiqSystem`s via
    /// [`EvalEngine::store`]; note that sharing also shares counters).
    store: Arc<ArtifactStore>,
    /// The engine's own accounting state: every legacy `EvalEngine`
    /// method charges here, cumulative across runs.
    root: SessionState,
}

/// The per-request (or per-driver) accounting an evaluation carries:
/// final-stage compile hit/miss counters ([`CacheStats::compile_hits`] /
/// `compile_misses`, numerically identical to the historical
/// whole-compile cache) and per-pass build aggregates. Historically
/// these lived directly on [`EvalEngine`], which assumed one driving
/// process per engine; extracting them lets one shared engine serve many
/// concurrent sessions ([`EvalEngine::session`]) with independent
/// accounting, while the engine's own `root` state keeps the legacy
/// cumulative behaviour.
#[derive(Debug, Default)]
struct SessionState {
    compile_hits: AtomicU64,
    compile_misses: AtomicU64,
    pass_builds: Mutex<BTreeMap<String, PassBuildAgg>>,
}

impl Default for EvalEngine {
    fn default() -> Self {
        EvalEngine::new(CostModel::default())
    }
}

/// The shared per-job artifact bundle assembled by `EvalEngine::job_context`
/// for both evaluation modes.
struct JobContext {
    key: CompileKey,
    circuit: Arc<Circuit>,
    compiled: Arc<CompileArtifact>,
    params: ExecParams,
    groups: Vec<usize>,
}

/// Cache key of a compiled artifact: (circuit fingerprint, layout
/// fingerprint, grid rows, grid cols, pipeline fingerprint).
type CompileKey = (u64, u64, usize, usize, u64);

fn compile_key(circuit: &Circuit, grid: &Grid, pipeline: &PipelineConfig) -> CompileKey {
    let layout = Layout::snake(circuit.n_qubits(), grid);
    (
        circuit.cache_key(),
        layout.cache_key(),
        grid.rows(),
        grid.cols(),
        pipeline.fingerprint(),
    )
}

/// Store key of a benchmark circuit: name × scale × generation seed.
fn circuit_store_key(spec: BenchmarkSpec, base_seed: u64) -> u64 {
    let (tag, budget) = match spec.scale {
        BenchScale::Paper => (0u64, 0u64),
        BenchScale::Small { max_qubits } => (1, max_qubits as u64),
    };
    qsim::rng::stable_hash_str(spec.bench.name(), &[tag, budget, base_seed])
}

/// Store key of the Impossible-MIMD baseline of a compiled artifact.
fn baseline_store_key(key: CompileKey) -> u64 {
    qsim::rng::stable_hash_str(
        "baseline",
        &[key.0, key.1, key.2 as u64, key.3 as u64, key.4],
    )
}

/// Store key of a co-simulation: the compiled artifact plus everything
/// the engine-derived [`ExecParams`] depends on (design point and derived
/// seed). Engine co-simulations always run untraced, so the trace flag is
/// not part of the key.
fn cosim_store_key(key: CompileKey, design: ControllerDesign, groups: usize, seed: u64) -> u64 {
    let [d, bs] = store::design_words(design);
    qsim::rng::stable_hash_str(
        "cosim",
        &[
            key.0,
            key.1,
            key.2 as u64,
            key.3 as u64,
            key.4,
            d,
            bs,
            groups as u64,
            seed,
        ],
    )
}

/// Generates a benchmark circuit at a spec entry's scale (the pure
/// builder behind [`EvalEngine::benchmark_circuit`] and
/// [`EvalEngine::cold_cache_stats`]).
fn generate_circuit(spec: BenchmarkSpec, base_seed: u64) -> Circuit {
    match spec.scale {
        BenchScale::Paper => spec.bench.paper_scale(),
        BenchScale::Small { max_qubits } => spec.bench.scaled(max_qubits, base_seed),
    }
}

impl EvalEngine {
    /// Creates an engine over a fresh unbounded in-memory store — the
    /// default configuration every golden file pins.
    pub fn new(model: CostModel) -> Self {
        EvalEngine::with_store(model, Arc::new(ArtifactStore::in_memory()))
    }

    /// Creates an engine over an explicit store — bounded, disk-backed
    /// ([`StoreConfig`]), or shared with other engines / `DigiqSystem`s.
    pub fn with_store(model: CostModel, store: Arc<ArtifactStore>) -> Self {
        EvalEngine {
            model,
            store,
            root: SessionState::default(),
        }
    }

    /// Convenience constructor: an engine over a new store with the given
    /// configuration.
    pub fn with_store_config(model: CostModel, config: StoreConfig) -> Self {
        EvalEngine::with_store(model, Arc::new(ArtifactStore::with_config(config)))
    }

    /// The engine's artifact store.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// The engine's cost model (what
    /// [`crate::system::DigiqSystem::build_for_engine`] shares).
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Store-wide per-namespace counters (hits, misses, disk hits,
    /// builds, evictions), surfaced beside [`EvalEngine::pass_cache_stats`].
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// The benchmark circuit for a spec entry, generated at most once per
    /// (benchmark, scale, seed).
    pub fn benchmark_circuit(&self, spec: BenchmarkSpec, base_seed: u64) -> Arc<Circuit> {
        self.store
            .get_or_build(ns::CIRCUIT, circuit_store_key(spec, base_seed), || {
                generate_circuit(spec, base_seed)
            })
    }

    /// Folds one pass build's metrics into a session's accounting.
    fn record_pass_build(state: &SessionState, m: &PassMetrics) {
        let mut map = lock_unpoisoned(&state.pass_builds);
        let agg = map.entry(m.pass.clone()).or_default();
        agg.wall_ns += m.wall_ns;
        agg.gates_in += m.gates_before as u64;
        agg.gates_out += m.gates_after as u64;
        agg.swaps_added += m.swap_delta() as u64;
        agg.slots_out += m.slots_after.unwrap_or(0) as u64;
    }

    /// The fully compiled artifact of `circuit` on `grid` under the
    /// **default** pipeline (snake initial layout) — see
    /// [`EvalEngine::compiled_with`].
    ///
    /// # Panics
    ///
    /// Panics if the circuit needs more qubits than the grid has.
    pub fn compiled(&self, circuit: &Circuit, grid: &Grid) -> Arc<CompileArtifact> {
        self.compiled_with(circuit, grid, &PipelineConfig::default())
    }

    /// Compiles `circuit` on `grid` (snake initial layout) through the
    /// shared [`Pipeline::standard`] for `cfg`, memoizing **every stage**
    /// under its chained stable key: each pass runs at most once per
    /// distinct (input, pass-prefix) fingerprint, and pipelines sharing a
    /// prefix (all designs and seeds of a sweep; different schedulers
    /// over one routed circuit) share the cached prefix artifacts.
    ///
    /// # Panics
    ///
    /// Panics if the circuit needs more qubits than the grid has, or if a
    /// pass or its post-validation fails (a configuration bug — every
    /// schedule is checked by its strategy's validator on build).
    pub fn compiled_with(
        &self,
        circuit: &Circuit,
        grid: &Grid,
        cfg: &PipelineConfig,
    ) -> Arc<CompileArtifact> {
        self.compiled_in(&self.root, circuit, grid, cfg)
    }

    fn compiled_in(
        &self,
        state: &SessionState,
        circuit: &Circuit,
        grid: &Grid,
        cfg: &PipelineConfig,
    ) -> Arc<CompileArtifact> {
        let (artifact, final_missed) =
            store::compile_cached(&self.store, circuit, grid, cfg, |m| {
                Self::record_pass_build(state, m)
            });
        if final_missed {
            state.compile_misses.fetch_add(1, Ordering::Relaxed);
        } else {
            state.compile_hits.fetch_add(1, Ordering::Relaxed);
        }
        artifact
    }

    /// The synthesized hardware of a design point (paper-default system
    /// configuration), built at most once per (design, groups). Returns
    /// `None` for the unbuildable Impossible MIMD reference.
    pub fn hardware(&self, design: ControllerDesign, groups: usize) -> Option<Arc<DesignHardware>> {
        if design == ControllerDesign::ImpossibleMimd {
            return None;
        }
        Some(
            self.store
                .get_or_build(ns::HARDWARE, store::hardware_key(design, groups), || {
                    build_hardware(&SystemConfig::paper_default(design, groups), &self.model)
                }),
        )
    }

    /// The shared sequence database for a basis kind, built at most once
    /// and handed out as a [`SharedSequenceDb`] handle.
    pub fn sequence_db(&self, kind: MinBasisKind) -> SharedSequenceDb {
        self.store
            .get_or_build(ns::SEQ_DB, store::basis_kind_key(kind), || {
                SequenceDb::build(&kind.basis(), kind.half_depth())
            })
    }

    /// The measured sequence-length distribution a design's executor
    /// charges, derived from the cached database; `None` for designs that
    /// do not decompose over a discrete basis.
    pub fn min_lengths(&self, design: ControllerDesign) -> Option<Arc<Vec<usize>>> {
        if !matches!(
            design,
            ControllerDesign::DigiqMin { .. } | ControllerDesign::SfqMimdDecomp
        ) {
            return None;
        }
        let kind = MinBasisKind::for_design(design);
        let db = self.sequence_db(kind);
        Some(
            self.store
                .get_or_build(ns::MIN_LENGTHS, store::basis_kind_key(kind), || {
                    measured_min_lengths_with_db(&kind.basis(), &db)
                }),
        )
    }

    /// Current cumulative cache accounting, read from the store's
    /// per-namespace counters (compile hits/misses account the final
    /// pipeline stage of this engine's own compiles).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats_in(&self.root)
    }

    fn cache_stats_in(&self, state: &SessionState) -> CacheStats {
        let counts = |name: &str| {
            let s = self.store.namespace_stats(name);
            (s.hits, s.misses)
        };
        let (circuit_hits, circuit_misses) = counts(ns::CIRCUIT);
        let (hardware_hits, hardware_misses) = counts(ns::HARDWARE);
        let (seq_db_hits, seq_db_misses) = counts(ns::SEQ_DB);
        let (min_lengths_hits, min_lengths_misses) = counts(ns::MIN_LENGTHS);
        let (baseline_hits, baseline_misses) = counts(ns::BASELINE);
        CacheStats {
            circuit_hits,
            circuit_misses,
            compile_hits: state.compile_hits.load(Ordering::Relaxed),
            compile_misses: state.compile_misses.load(Ordering::Relaxed),
            hardware_hits,
            hardware_misses,
            seq_db_hits,
            seq_db_misses,
            min_lengths_hits,
            min_lengths_misses,
            baseline_hits,
            baseline_misses,
        }
    }

    /// Per-pass cache accounting across every pipeline stage in the
    /// engine's store, label-sorted. Hit/miss totals are deterministic
    /// for a fixed job set regardless of worker count (under the default
    /// unbounded in-memory store).
    pub fn pass_cache_stats(&self) -> PassCacheStats {
        self.pass_cache_stats_in(&self.root, None)
    }

    /// Per-pass accounting of `state`; with a `base` store snapshot the
    /// stage hit/miss counters are the delta since that snapshot (what a
    /// per-request [`EvalSession`] reports), otherwise they are the
    /// store's cumulative counters.
    fn pass_cache_stats_in(
        &self,
        state: &SessionState,
        base: Option<&StoreStats>,
    ) -> PassCacheStats {
        let builds = lock_unpoisoned(&state.pass_builds);
        let stats = self.store.stats();
        let stats = match base {
            Some(base) => stats.since(base),
            None => stats,
        };
        let passes = stats
            .namespaces
            .iter()
            .filter(|n| n.namespace.starts_with(ns::STAGE_PREFIX))
            .map(|n| {
                let label = &n.namespace[ns::STAGE_PREFIX.len()..];
                let agg = builds.get(label).copied().unwrap_or_default();
                PassCacheStat {
                    pass: label.to_string(),
                    hits: n.hits,
                    misses: n.misses,
                    wall_ns: agg.wall_ns,
                    gates_in: agg.gates_in,
                    gates_out: agg.gates_out,
                    swaps_added: agg.swaps_added,
                    slots_out: agg.slots_out,
                }
            })
            .collect();
        PassCacheStats { passes }
    }

    /// [`CacheStats`] of a **cold, uninterrupted** run of `spec` on a
    /// fresh engine, computed as a pure function of the spec without
    /// executing any job: lookups are fixed per job and misses count
    /// distinct content keys (circuits are generated once per distinct
    /// benchmark instance to fingerprint the compile inputs). Pinned
    /// equal to live accounting by `crates/core/tests/store_persist.rs`;
    /// journaled runs ([`EvalEngine::run_journaled`]) report this, so a
    /// resumed sweep serializes byte-identically to an uninterrupted one.
    pub fn cold_cache_stats(spec: &SweepSpec) -> CacheStats {
        Self::cold_cache_stats_with(spec, |b| generate_circuit(b, spec.base_seed).into())
    }

    /// [`EvalEngine::cold_cache_stats`] reusing this engine's already
    /// resident benchmark circuits (a counter-neutral
    /// [`ArtifactStore::peek`]) instead of regenerating them — what
    /// [`EvalEngine::run_journaled`] calls, so a journaled sweep does
    /// not re-run the paper-scale circuit generators just to
    /// fingerprint the compile inputs. Circuits a resumed run skipped
    /// entirely are still generated on demand.
    fn cold_cache_stats_warm(&self, spec: &SweepSpec) -> CacheStats {
        Self::cold_cache_stats_with(spec, |b| {
            self.store
                .peek::<Circuit>(ns::CIRCUIT, circuit_store_key(b, spec.base_seed))
                .unwrap_or_else(|| generate_circuit(b, spec.base_seed).into())
        })
    }

    fn cold_cache_stats_with(
        spec: &SweepSpec,
        mut circuit_of: impl FnMut(BenchmarkSpec) -> Arc<Circuit>,
    ) -> CacheStats {
        let grid = Grid::new(spec.grid_rows, spec.grid_cols);
        let jobs = spec.job_count() as u64;

        let mut distinct_specs: Vec<BenchmarkSpec> = Vec::new();
        for &b in &spec.benchmarks {
            if !distinct_specs.contains(&b) {
                distinct_specs.push(b);
            }
        }
        let mut compile_inputs: BTreeSet<(u64, u64)> = BTreeSet::new();
        for &b in &distinct_specs {
            let circuit = circuit_of(b);
            let layout = Layout::snake(circuit.n_qubits(), &grid);
            compile_inputs.insert((circuit.cache_key(), layout.cache_key()));
        }
        let circuit_misses = distinct_specs.len() as u64;
        let compile_misses = compile_inputs.len() as u64;

        let per_point = (spec.benchmarks.len() * spec.seeds.len()) as u64;
        let mut hardware_lookups = 0u64;
        let mut hardware_keys: BTreeSet<([u64; 2], usize)> = BTreeSet::new();
        let mut decomp_lookups = 0u64;
        let mut decomp_kinds: BTreeSet<u64> = BTreeSet::new();
        for point in &spec.designs {
            if spec.synthesize_hardware && point.design != ControllerDesign::ImpossibleMimd {
                hardware_lookups += per_point;
                hardware_keys.insert((store::design_words(point.design), point.groups));
            }
            if matches!(
                point.design,
                ControllerDesign::DigiqMin { .. } | ControllerDesign::SfqMimdDecomp
            ) {
                decomp_lookups += per_point;
                decomp_kinds.insert(store::basis_kind_key(MinBasisKind::for_design(
                    point.design,
                )));
            }
        }
        let hardware_misses = hardware_keys.len() as u64;
        let decomp_misses = decomp_kinds.len() as u64;

        CacheStats {
            circuit_hits: jobs - circuit_misses,
            circuit_misses,
            compile_hits: jobs - compile_misses,
            compile_misses,
            hardware_hits: hardware_lookups - hardware_misses,
            hardware_misses,
            seq_db_hits: decomp_lookups - decomp_misses,
            seq_db_misses: decomp_misses,
            min_lengths_hits: decomp_lookups - decomp_misses,
            min_lengths_misses: decomp_misses,
            baseline_hits: jobs - compile_misses,
            baseline_misses: compile_misses,
        }
    }

    /// Assembles the shared per-job artifacts — identical for the
    /// analytic and co-simulation modes.
    fn job_context(&self, state: &SessionState, spec: &SweepSpec, job: &JobSpec) -> JobContext {
        let grid = Grid::new(spec.grid_rows, spec.grid_cols);
        let circuit = self.benchmark_circuit(job.bench, spec.base_seed);
        let compiled = self.compiled_in(state, &circuit, &grid, &spec.pipeline);
        let key = compile_key(&circuit, &grid, &spec.pipeline);

        let mut config = SystemConfig::paper_default(job.point.design, job.point.groups);
        config.n_qubits = grid.n_qubits();
        let mut params = ExecParams::new(config);
        params.seed = derive_seed(spec.base_seed, job.seed);
        if let Some(lengths) = self.min_lengths(job.point.design) {
            params.min_lengths = (*lengths).clone();
        }

        let groups =
            checkerboard_groups(grid.cols(), grid.n_qubits(), job.point.groups.min(2).max(1));
        JobContext {
            key,
            circuit,
            compiled,
            params,
            groups,
        }
    }

    /// Evaluates one job (pure given the spec; used by [`EvalEngine::run`]
    /// and directly by tests).
    pub fn run_job(&self, spec: &SweepSpec, job: &JobSpec) -> JobRecord {
        self.run_job_in(&self.root, spec, job)
    }

    fn run_job_in(&self, state: &SessionState, spec: &SweepSpec, job: &JobSpec) -> JobRecord {
        let JobContext {
            key,
            circuit,
            compiled,
            params,
            groups,
        } = self.job_context(state, spec, job);
        let exec = execute(&compiled.circuit, compiled.scheduled(), &groups, &params);
        // The Impossible MIMD normalization baseline ignores the seed,
        // the group map and the decomposition distribution, so it is a
        // pure function of the compiled artifact — memoize it per
        // compile key instead of re-running it for every design and seed
        // (and persist it: with a disk-backed store a warm-started sweep
        // skips the baseline executions too).
        let base_exec =
            self.store
                .get_or_build_artifact(ns::BASELINE, baseline_store_key(key), || {
                    let mut base = params.clone();
                    base.config.design = ControllerDesign::ImpossibleMimd;
                    execute(&compiled.circuit, compiled.scheduled(), &groups, &base)
                });

        let power_w = if spec.synthesize_hardware {
            self.hardware(job.point.design, job.point.groups)
                .map(|hw| hw.report.power_w)
        } else {
            None
        };

        JobRecord {
            design: job.point.design,
            groups: job.point.groups,
            benchmark: job.bench.bench.name().to_string(),
            n_qubits: circuit.n_qubits(),
            seed: job.seed,
            power_w,
            report: BenchmarkReport {
                benchmark: job.bench.bench.name().to_string(),
                logical_gates: compiled.logical_gates,
                swaps: compiled.swaps,
                slots: compiled.scheduled().len(),
                normalized_time: exec.total_ns / base_exec.total_ns.max(f64::MIN_POSITIVE),
                exec,
            },
        }
    }

    /// Runs the whole sweep on `workers` scoped threads and merges the
    /// records in job-index order. The report (including its cache
    /// accounting) is identical for any worker count.
    pub fn run(&self, spec: &SweepSpec, workers: usize) -> SweepReport {
        self.run_in(&self.root, spec, workers)
    }

    fn run_in(&self, state: &SessionState, spec: &SweepSpec, workers: usize) -> SweepReport {
        let before = self.cache_stats_in(state);
        let jobs = spec.jobs();
        let records = par_map_ordered(&jobs, workers, |_, job| self.run_job_in(state, spec, job));
        SweepReport {
            grid_rows: spec.grid_rows,
            grid_cols: spec.grid_cols,
            jobs: records,
            cache: self.cache_stats_in(state).since(&before),
        }
    }

    /// Co-simulates one job: the cycle-accurate machine and the analytic
    /// model run on the *same* compiled artifact, parameters, and group
    /// map, so the record carries both sides of the differential check.
    /// Co-simulations are memoized per (compiled artifact, design point,
    /// derived seed).
    pub fn run_cosim_job(&self, spec: &SweepSpec, job: &JobSpec) -> CosimRecord {
        self.run_cosim_job_in(&self.root, spec, job)
    }

    fn run_cosim_job_in(
        &self,
        state: &SessionState,
        spec: &SweepSpec,
        job: &JobSpec,
    ) -> CosimRecord {
        let JobContext {
            key,
            circuit,
            compiled,
            params,
            groups,
        } = self.job_context(state, spec, job);
        let cosim = self.store.get_or_build_artifact(
            ns::COSIM,
            cosim_store_key(key, job.point.design, job.point.groups, params.seed),
            || {
                cosim::simulate(
                    &compiled.circuit,
                    compiled.scheduled(),
                    &groups,
                    &CosimParams::new(params.clone()),
                )
            },
        );
        let analytic = execute(&compiled.circuit, compiled.scheduled(), &groups, &params);
        CosimRecord {
            design: job.point.design,
            groups: job.point.groups,
            benchmark: job.bench.bench.name().to_string(),
            n_qubits: circuit.n_qubits(),
            seed: job.seed,
            cosim: (*cosim).clone(),
            analytic,
        }
    }

    /// The co-simulation evaluation mode: the same sweep sharding and
    /// job-index merge as [`EvalEngine::run`], but every job runs the
    /// cycle-accurate machine alongside the analytic model. Byte-identical
    /// serialized output for any worker count.
    pub fn run_cosim(&self, spec: &SweepSpec, workers: usize) -> CosimSweepReport {
        self.run_cosim_in(&self.root, spec, workers)
    }

    fn run_cosim_in(
        &self,
        state: &SessionState,
        spec: &SweepSpec,
        workers: usize,
    ) -> CosimSweepReport {
        let jobs = spec.jobs();
        let records = par_map_ordered(&jobs, workers, |_, job| {
            self.run_cosim_job_in(state, spec, job)
        });
        CosimSweepReport {
            grid_rows: spec.grid_rows,
            grid_cols: spec.grid_cols,
            jobs: records,
        }
    }

    /// Co-simulation cache accounting: `(hits, misses)`. Kept out of
    /// [`CacheStats`] so the analytic sweep's serialized report (and its
    /// golden file) is unchanged by the co-simulation mode.
    pub fn cosim_cache_stats(&self) -> (u64, u64) {
        let s = self.store.namespace_stats(ns::COSIM);
        (s.hits, s.misses)
    }

    /// [`EvalEngine::run`] with a job-completion journal: every finished
    /// job is appended (and flushed) to `journal`, and with `resume` the
    /// jobs already journaled are loaded instead of re-run — an
    /// interrupted sweep picks up exactly where it stopped. The merged
    /// report's cache accounting is [`EvalEngine::cold_cache_stats`]
    /// (the deterministic accounting of an uninterrupted cold run), so a
    /// resumed sweep serializes **byte-identically** to an uninterrupted
    /// one.
    ///
    /// `interrupt_after` deliberately stops the run after that many
    /// fresh jobs (the testing hook behind `sweep --interrupt-after`);
    /// an interrupted run returns `None`.
    pub fn run_journaled(
        &self,
        spec: &SweepSpec,
        workers: usize,
        journal: &SweepJournal,
        resume: bool,
        interrupt_after: Option<usize>,
    ) -> Option<SweepReport> {
        self.run_journaled_in(
            &self.root,
            spec,
            workers,
            journal,
            resume,
            RunControl {
                interrupt_after,
                stop: None,
            },
        )
    }

    fn run_journaled_in(
        &self,
        state: &SessionState,
        spec: &SweepSpec,
        workers: usize,
        journal: &SweepJournal,
        resume: bool,
        ctl: RunControl<'_>,
    ) -> Option<SweepReport> {
        let jobs = spec.jobs();
        let mut merged: BTreeMap<usize, JobRecord> = BTreeMap::new();
        if resume {
            for (index, record) in journal.load() {
                let index = index as usize;
                if index < jobs.len() {
                    if let Ok(record) = JobRecord::from_json(&record) {
                        merged.insert(index, record);
                    }
                }
            }
        }
        let mut pending: Vec<JobSpec> = jobs
            .iter()
            .filter(|j| !merged.contains_key(&j.index))
            .copied()
            .collect();
        let interrupted = ctl.interrupt_after.is_some_and(|n| n < pending.len());
        if let Some(n) = ctl.interrupt_after {
            pending.truncate(n);
        }
        // A hand-rolled pool rather than `par_map_ordered`: workers check
        // the external stop flag before claiming each job, so a draining
        // server stops between jobs while every job already claimed still
        // finishes and journals (the journal is what makes the drain
        // recoverable).
        let workers = workers.max(1).min(pending.len().max(1));
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<JobRecord>>> =
            pending.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    if ctl.stop.is_some_and(|f| f.load(Ordering::Relaxed)) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= pending.len() {
                        break;
                    }
                    let job = &pending[i];
                    let record = self.run_job_in(state, spec, job);
                    journal.append(job.index as u64, &record.to_json());
                    *lock_unpoisoned(&slots[i]) = Some(record);
                });
            }
        });
        let mut completed = 0usize;
        for (job, slot) in pending.iter().zip(slots) {
            let record = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(record) = record {
                merged.insert(job.index, record);
                completed += 1;
            }
        }
        if interrupted || completed < pending.len() {
            return None;
        }
        debug_assert_eq!(merged.len(), jobs.len());
        Some(SweepReport {
            grid_rows: spec.grid_rows,
            grid_cols: spec.grid_cols,
            jobs: merged.into_values().collect(),
            cache: self.cold_cache_stats_warm(spec),
        })
    }

    /// Runs `spec` as one worker of a **distributed** sweep: any number
    /// of processes sharing one cache dir cooperate with no coordinator,
    /// each claiming jobs through the store's claim files
    /// ([`crate::store::JobClaims`]), evaluating them single-file, and
    /// streaming completions into its own shard journal
    /// (`<spec key>.<worker>.jsonl`) so no two processes ever append to
    /// the same file. A worker whose scan finds every remaining job
    /// claimed by someone else waits and rescans — a killed worker's
    /// claims stop being heartbeated, go stale after the TTL, and are
    /// reclaimed by the survivors — and every worker returns only once
    /// all jobs are journaled, handing back the merged report (identical
    /// bytes to [`EvalEngine::merge_distributed`], the serial run, and
    /// the journaled run: pure job records merged in index order with
    /// the deterministic cold-run cache accounting stamped on top).
    ///
    /// `stop` aborts between jobs (returning `Ok(None)`) the way a
    /// draining server stops a journaled sweep.
    ///
    /// # Errors
    ///
    /// Returns the IO error if the claim directory or shard journal
    /// cannot be created.
    pub fn run_distributed(
        &self,
        spec: &SweepSpec,
        cache_dir: &Path,
        cfg: &DistributedConfig,
        stop: Option<&AtomicBool>,
    ) -> std::io::Result<Option<SweepReport>> {
        self.run_distributed_in(&self.root, spec, cache_dir, cfg, stop)
    }

    fn run_distributed_in(
        &self,
        state: &SessionState,
        spec: &SweepSpec,
        cache_dir: &Path,
        cfg: &DistributedConfig,
        stop: Option<&AtomicBool>,
    ) -> std::io::Result<Option<SweepReport>> {
        let key = spec.stable_key();
        let journal_dir = ArtifactStore::journal_dir(cache_dir);
        let claims = JobClaims::open(cache_dir, key, &cfg.worker, cfg.claim_ttl)?;
        let shard = SweepJournal::open_shard(&journal_dir, key, &cfg.worker)?;
        let jobs = spec.jobs();
        let load_done = || -> BTreeMap<usize, JobRecord> {
            let mut done = BTreeMap::new();
            for (index, record) in SweepJournal::load_all(&journal_dir, key) {
                let index = index as usize;
                if index < jobs.len() {
                    if let Ok(record) = JobRecord::from_json(&record) {
                        done.insert(index, record);
                    }
                }
            }
            done
        };
        let mut done = load_done();
        while done.len() < jobs.len() {
            if stop.is_some_and(|f| f.load(Ordering::Relaxed)) {
                return Ok(None);
            }
            let mut progressed = false;
            // Scan from this worker's offset so workers spread over
            // disjoint regions first and only contend at the end.
            for k in 0..jobs.len() {
                if stop.is_some_and(|f| f.load(Ordering::Relaxed)) {
                    return Ok(None);
                }
                let job = &jobs[(k + cfg.scan_offset) % jobs.len()];
                if done.contains_key(&job.index) || !claims.try_claim(job.index as u64) {
                    continue;
                }
                // Between our last journal scan and winning the claim,
                // another worker may have journaled this job and released
                // — re-check before evaluating so a job is never
                // journaled twice.
                done = load_done();
                if done.contains_key(&job.index) {
                    claims.release(job.index as u64);
                    continue;
                }
                let _hb = claims.heartbeat(job.index as u64);
                if let Some(hold) = cfg.hold {
                    std::thread::sleep(hold);
                }
                let record = self.run_job_in(state, spec, job);
                shard.append(job.index as u64, &record.to_json());
                claims.release(job.index as u64);
                done.insert(job.index, record);
                progressed = true;
            }
            if !progressed && done.len() < jobs.len() {
                // Everything left is claimed elsewhere: wait for those
                // workers to journal — or for their claims to go stale.
                std::thread::sleep(cfg.poll);
                done = load_done();
            }
        }
        Ok(Some(SweepReport {
            grid_rows: spec.grid_rows,
            grid_cols: spec.grid_cols,
            jobs: done.into_values().collect(),
            cache: self.cold_cache_stats_warm(spec),
        }))
    }

    /// Assembles the final report of a distributed sweep from whatever
    /// shard layout the workers left behind: loads the base journal plus
    /// every worker shard, merges records in job-index order, and stamps
    /// the deterministic cold-run cache accounting — so the merged bytes
    /// are identical to a serial [`EvalEngine::run`] of the same spec no
    /// matter how many workers ran, which worker evaluated which job, or
    /// how often a job was re-run after a claim expired.
    ///
    /// # Errors
    ///
    /// Returns a description when any job is missing from the journals
    /// (the sweep is still running, or a worker died un-reclaimed).
    pub fn merge_distributed(
        &self,
        spec: &SweepSpec,
        cache_dir: &Path,
    ) -> Result<SweepReport, String> {
        let journal_dir = ArtifactStore::journal_dir(cache_dir);
        let jobs = spec.job_count();
        let mut merged: BTreeMap<usize, JobRecord> = BTreeMap::new();
        for (index, record) in SweepJournal::load_all(&journal_dir, spec.stable_key()) {
            let index = index as usize;
            if index < jobs {
                if let Ok(record) = JobRecord::from_json(&record) {
                    merged.insert(index, record);
                }
            }
        }
        if merged.len() < jobs {
            return Err(format!(
                "distributed sweep incomplete: {}/{} jobs journaled under {}",
                merged.len(),
                jobs,
                journal_dir.display()
            ));
        }
        Ok(SweepReport {
            grid_rows: spec.grid_rows,
            grid_cols: spec.grid_cols,
            jobs: merged.into_values().collect(),
            cache: self.cold_cache_stats_warm(spec),
        })
    }

    /// Opens a per-request [`EvalSession`] over this engine — the unit
    /// of isolation digiq-serve gives each client request while the
    /// engine itself (and its `Arc<ArtifactStore>`) is shared across
    /// every server worker thread.
    pub fn session(&self) -> EvalSession<'_> {
        EvalSession {
            engine: self,
            state: SessionState::default(),
            base: self.cache_stats_in(&SessionState::default()),
            store_base: self.store.stats(),
        }
    }
}

/// Configuration of one distributed sweep worker
/// ([`EvalEngine::run_distributed`]).
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Worker label: names the shard journal file and is written into
    /// claim bodies for diagnostics (`w0`, `serve-4217`, …).
    pub worker: String,
    /// Job index this worker's scan starts from (workers spread over
    /// disjoint regions first; `worker_id * jobs / n_workers` for evenly
    /// offset CLI workers).
    pub scan_offset: usize,
    /// How long an un-refreshed claim stays valid before another worker
    /// may steal it. Must comfortably exceed the heartbeat period
    /// (quarter-TTL) plus scheduling jitter.
    pub claim_ttl: Duration,
    /// Testing hook: sleep this long while holding each claim before
    /// evaluating, widening the window in which a kill leaves a claimed
    /// but unjournaled job behind (`sweep --dist-hold-ms`).
    pub hold: Option<Duration>,
    /// Rescan interval while every remaining job is claimed elsewhere.
    pub poll: Duration,
}

impl DistributedConfig {
    /// A worker configuration with the default 30 s TTL and 25 ms poll.
    pub fn new(worker: impl Into<String>) -> Self {
        DistributedConfig {
            worker: worker.into(),
            scan_offset: 0,
            claim_ttl: Duration::from_secs(30),
            hold: None,
            poll: Duration::from_millis(25),
        }
    }
}

/// Cooperative run controls for a journaled sweep: an optional
/// fresh-job budget (the deterministic `--interrupt-after` testing
/// hook) and an optional external stop flag (how a draining
/// digiq-serve stops an in-flight sweep between jobs).
#[derive(Debug, Default, Clone, Copy)]
pub struct RunControl<'a> {
    /// Stop after at most this many fresh (non-resumed) jobs.
    pub interrupt_after: Option<usize>,
    /// When set and flipped to `true`, workers stop claiming new jobs;
    /// jobs already claimed still finish and journal, and the run
    /// returns `None` if anything was left undone.
    pub stop: Option<&'a AtomicBool>,
}

/// Per-request evaluation state over a shared [`EvalEngine`].
///
/// digiq-serve shares one engine — one compile cache, one artifact
/// store — across every worker thread; each client request opens a
/// session ([`EvalEngine::session`]) so the per-request state that used
/// to assume a single driving process (compile counters, pass-build
/// aggregates, cache-stats snapshots, journal handles) is isolated from
/// every concurrent request, while the artifacts themselves stay shared
/// build-once in the store (identical in-flight requests coalesce onto
/// one build).
#[derive(Debug)]
pub struct EvalSession<'e> {
    engine: &'e EvalEngine,
    state: SessionState,
    base: CacheStats,
    store_base: StoreStats,
}

impl<'e> EvalSession<'e> {
    /// The shared engine underneath.
    pub fn engine(&self) -> &'e EvalEngine {
        self.engine
    }

    /// [`EvalEngine::run`] charged to this session's counters.
    pub fn run(&self, spec: &SweepSpec, workers: usize) -> SweepReport {
        self.engine.run_in(&self.state, spec, workers)
    }

    /// [`EvalSession::run`] with the report's cache accounting replaced
    /// by the deterministic cold-run accounting
    /// ([`EvalEngine::cold_cache_stats`]) — what the server serializes,
    /// so a response is byte-identical to a fresh `sweep` CLI run of the
    /// same spec no matter how warm the shared store already is or what
    /// other requests run concurrently.
    pub fn run_deterministic(&self, spec: &SweepSpec, workers: usize) -> SweepReport {
        let mut report = self.engine.run_in(&self.state, spec, workers);
        report.cache = self.engine.cold_cache_stats_warm(spec);
        report
    }

    /// [`EvalEngine::run_cosim`] charged to this session's counters
    /// (the cosim report carries no cache accounting, so its bytes are
    /// already independent of store warmth).
    pub fn run_cosim(&self, spec: &SweepSpec, workers: usize) -> CosimSweepReport {
        self.engine.run_cosim_in(&self.state, spec, workers)
    }

    /// [`EvalEngine::run_distributed`] charged to this session's
    /// counters — how a serve daemon's eval worker joins a distributed
    /// sweep over the shared cache dir instead of evaluating every job
    /// itself.
    ///
    /// # Errors
    ///
    /// Returns the IO error if the claim directory or shard journal
    /// cannot be created.
    pub fn run_distributed(
        &self,
        spec: &SweepSpec,
        cache_dir: &Path,
        cfg: &DistributedConfig,
        stop: Option<&AtomicBool>,
    ) -> std::io::Result<Option<SweepReport>> {
        self.engine
            .run_distributed_in(&self.state, spec, cache_dir, cfg, stop)
    }

    /// [`EvalEngine::run_journaled`] charged to this session, with the
    /// full [`RunControl`] surface (fresh-job budget plus external stop
    /// flag).
    pub fn run_journaled(
        &self,
        spec: &SweepSpec,
        workers: usize,
        journal: &SweepJournal,
        resume: bool,
        ctl: RunControl<'_>,
    ) -> Option<SweepReport> {
        self.engine
            .run_journaled_in(&self.state, spec, workers, journal, resume, ctl)
    }

    /// Cache accounting since this session opened: compile counters are
    /// exactly this session's; the store-backed counters are the store
    /// delta since the session opened (concurrent sessions sharing the
    /// store bleed into them — per-request exact accounting is what
    /// [`EvalSession::run_deterministic`] stamps instead).
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache_stats_in(&self.state).since(&self.base)
    }

    /// Per-pass pipeline accounting since this session opened: builds
    /// and build metrics are exactly this session's; hits/misses are
    /// the store delta since the session opened.
    pub fn pass_cache_stats(&self) -> PassCacheStats {
        self.engine
            .pass_cache_stats_in(&self.state, Some(&self.store_base))
    }
}

/// One merged co-simulation sweep row: the cycle-accurate report and the
/// analytic report it must reproduce.
#[derive(Debug, Clone, PartialEq)]
pub struct CosimRecord {
    /// Controller design.
    pub design: ControllerDesign,
    /// Group count `G`.
    pub groups: usize,
    /// Benchmark display name.
    pub benchmark: String,
    /// Width of the generated benchmark instance.
    pub n_qubits: usize,
    /// Drift seed of this job.
    pub seed: u64,
    /// The cycle-accurate co-simulation.
    pub cosim: CosimReport,
    /// The analytic model on the identical artifact and draws.
    pub analytic: ExecReport,
}

impl CosimRecord {
    /// The divergence between the two engines for this job.
    pub fn diff(&self) -> cosim::CosimDiff {
        cosim::diff_analytic(&self.cosim, &self.analytic)
    }

    /// Reads a record back from its [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "cosim record";
        Ok(CosimRecord {
            design: ControllerDesign::from_json(
                j.get("design").ok_or("cosim record missing `design`")?,
            )?,
            groups: j.count_field("groups", CTX)? as usize,
            benchmark: j.str_field("benchmark", CTX)?.to_string(),
            n_qubits: j.count_field("n_qubits", CTX)? as usize,
            seed: j.count_field("seed", CTX)?,
            cosim: CosimReport::from_json(j.get("cosim").ok_or("cosim record missing `cosim`")?)?,
            analytic: ExecReport::from_json(
                j.get("analytic").ok_or("cosim record missing `analytic`")?,
            )?,
        })
    }
}

impl ToJson for CosimRecord {
    fn to_json(&self) -> Json {
        Json::obj([
            ("design", self.design.to_json()),
            ("groups", self.groups.to_json()),
            ("benchmark", self.benchmark.to_json()),
            ("n_qubits", self.n_qubits.to_json()),
            ("seed", self.seed.to_json()),
            ("cosim", self.cosim.to_json()),
            ("analytic", self.analytic.to_json()),
        ])
    }
}

/// The aggregated result of one co-simulation sweep, serializable through
/// [`sfq_hw::json`] and readable back via [`CosimSweepReport::parse`].
#[derive(Debug, Clone, PartialEq)]
pub struct CosimSweepReport {
    /// Device grid rows.
    pub grid_rows: usize,
    /// Device grid columns.
    pub grid_cols: usize,
    /// One record per job, in merge (job-index) order.
    pub jobs: Vec<CosimRecord>,
}

impl ToJson for CosimSweepReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("grid_rows", self.grid_rows.to_json()),
            ("grid_cols", self.grid_cols.to_json()),
            ("jobs", self.jobs.to_json()),
        ])
    }
}

impl CosimSweepReport {
    /// Worst divergence across the sweep (`None` when empty).
    pub fn worst_diff(&self) -> Option<cosim::CosimDiff> {
        self.jobs
            .iter()
            .map(|r| r.diff())
            .max_by(|a, b| a.total_rel_err.total_cmp(&b.total_rel_err))
    }

    /// True when every job's integer counters match to the cycle and ns
    /// totals agree within `tol`.
    pub fn all_exact(&self, tol: f64) -> bool {
        self.jobs.iter().all(|r| r.diff().is_exact(tol))
    }

    /// Reads a report back from its [`ToJson`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "cosim sweep report";
        let jobs = match j.get("jobs") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(CosimRecord::from_json)
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("cosim sweep report missing array `jobs`".to_string()),
        };
        Ok(CosimSweepReport {
            grid_rows: j.count_field("grid_rows", CTX)? as usize,
            grid_cols: j.count_field("grid_cols", CTX)? as usize,
            jobs,
        })
    }

    /// Parses a serialized report (the inverse of
    /// [`ToJson::to_json_string`]).
    ///
    /// # Errors
    ///
    /// Returns the JSON syntax error or the first structural mismatch.
    pub fn parse(text: &str) -> Result<Self, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        CosimSweepReport::from_json(&j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_cache_stats_handle_duplicate_axis_entries() {
        // Duplicate design points and benchmark entries inflate lookups
        // but not distinct-key misses — exactly like the live store.
        let mut spec = SweepSpec::small_grid(
            vec![
                ControllerDesign::DigiqMin { bs: 2 }.into(),
                ControllerDesign::DigiqMin { bs: 2 }.into(),
            ],
            &[Benchmark::Bv, Benchmark::Bv],
            4,
            4,
        )
        .with_hardware();
        spec.benchmarks.push(spec.benchmarks[0]);
        let engine = EvalEngine::new(CostModel::default());
        let live = engine.run(&spec, 2);
        assert_eq!(EvalEngine::cold_cache_stats(&spec), live.cache);
        assert_eq!(live.cache.circuit_misses, 1);
        assert_eq!(live.cache.hardware_misses, 1);
        assert_eq!(live.cache.seq_db_misses, 1);
    }

    #[test]
    fn par_map_preserves_order_for_any_worker_count() {
        let items: Vec<usize> = (0..57).collect();
        let serial = par_map_ordered(&items, 1, |i, &x| i * 1000 + x * x);
        for workers in [2, 4, 9] {
            let parallel = par_map_ordered(&items, workers, |i, &x| i * 1000 + x * x);
            assert_eq!(serial, parallel);
        }
        assert!(par_map_ordered(&[] as &[usize], 4, |_, &x| x).is_empty());
    }

    #[test]
    fn job_enumeration_is_design_major() {
        let spec = SweepSpec::small_grid(
            vec![
                ControllerDesign::DigiqOpt { bs: 4 }.into(),
                ControllerDesign::ImpossibleMimd.into(),
            ],
            &[Benchmark::Bv, Benchmark::Qgan],
            4,
            4,
        )
        .with_seeds(vec![7, 8]);
        let jobs = spec.jobs();
        assert_eq!(jobs.len(), spec.job_count());
        assert_eq!(jobs.len(), 8);
        assert_eq!(jobs[0].point.design, ControllerDesign::DigiqOpt { bs: 4 });
        assert_eq!(jobs[0].bench.bench, Benchmark::Bv);
        assert_eq!(jobs[0].seed, 7);
        assert_eq!(jobs[1].seed, 8);
        assert_eq!(jobs[2].bench.bench, Benchmark::Qgan);
        assert_eq!(jobs[4].point.design, ControllerDesign::ImpossibleMimd);
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.index, i);
        }
    }

    #[test]
    fn compiled_artifacts_are_shared_across_designs() {
        let engine = EvalEngine::new(CostModel::default());
        let spec = SweepSpec::small_grid(
            vec![
                ControllerDesign::ImpossibleMimd.into(),
                ControllerDesign::SfqMimdNaive.into(),
                ControllerDesign::DigiqOpt { bs: 8 }.into(),
            ],
            &[Benchmark::Bv],
            4,
            4,
        );
        let report = engine.run(&spec, 2);
        assert_eq!(report.jobs.len(), 3);
        // One circuit generation and one compile serve all three designs.
        assert_eq!(report.cache.circuit_misses, 1);
        assert_eq!(report.cache.circuit_hits, 2);
        assert_eq!(report.cache.compile_misses, 1);
        assert_eq!(report.cache.compile_hits, 2);
        // All three evaluated the same compiled workload.
        let slots: Vec<usize> = report.jobs.iter().map(|r| r.report.slots).collect();
        assert_eq!(slots[0], slots[1]);
        assert_eq!(slots[1], slots[2]);
    }

    #[test]
    fn hardware_power_recorded_when_requested() {
        let engine = EvalEngine::new(CostModel::default());
        let spec = SweepSpec::small_grid(
            vec![
                ControllerDesign::ImpossibleMimd.into(),
                ControllerDesign::DigiqOpt { bs: 8 }.into(),
            ],
            &[Benchmark::Bv],
            4,
            4,
        )
        .with_hardware();
        let report = engine.run(&spec, 2);
        assert_eq!(report.jobs[0].power_w, None, "Impossible MIMD: no hardware");
        let p = report.jobs[1].power_w.expect("opt hardware synthesized");
        assert!(p > 0.0 && p < 10.0);
        assert_eq!(report.cache.hardware_misses, 1);
    }

    #[test]
    fn derive_seed_is_stable_and_salted() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
    }

    #[test]
    fn warm_engine_reuses_everything() {
        let engine = EvalEngine::new(CostModel::default());
        let spec = SweepSpec::small_grid(
            vec![ControllerDesign::DigiqOpt { bs: 4 }.into()],
            &[Benchmark::Ising],
            4,
            4,
        );
        let cold = engine.run(&spec, 1);
        let warm = engine.run(&spec, 3);
        assert_eq!(cold.jobs, warm.jobs, "cache hits must not change results");
        assert_eq!(warm.cache.circuit_misses, 0);
        assert_eq!(warm.cache.compile_misses, 0);
        assert_eq!(warm.cache.total_misses(), 0);
        assert!(warm.cache.total_hits() > 0);
    }

    #[test]
    fn sweep_spec_round_trips_through_json() {
        let mut spec = SweepSpec::smoke()
            .with_seeds(vec![0, 3, 9_007_199_254_740_991])
            .with_hardware()
            .with_pipeline(
                PipelineConfig::default()
                    .with_router(RouteStrategy::Lookahead { window: 5 })
                    .with_scheduler(ScheduleStrategy::Asap),
            );
        spec.benchmarks.push(BenchmarkSpec {
            bench: Benchmark::Ising,
            scale: BenchScale::Paper,
        });
        let text = spec.to_json_string();
        assert_eq!(SweepSpec::parse(&text), Ok(spec));
        // The default smoke spec too — this is the wire form the serve
        // smoke tests replay against the engine golden.
        let smoke = SweepSpec::smoke();
        assert_eq!(SweepSpec::parse(&smoke.to_json_string()), Ok(smoke));
    }

    #[test]
    fn sweep_spec_from_json_enforces_bounds() {
        let ok = SweepSpec::smoke().to_json_string();
        for (mutation, needle) in [
            (ok.replace("\"seeds\":[0]", "\"seeds\":[]"), "non-empty"),
            (
                ok.replace("\"grid_rows\":4", "\"grid_rows\":70000"),
                "grid out of range",
            ),
            (
                ok.replace("\"groups\":2", "\"groups\":0"),
                "out of range 1..=4096",
            ),
            (ok.replace("\"BV\"", "\"nope\""), "unknown benchmark"),
            (ok.replace("\"greedy\"", "\"magic\""), "unknown router"),
            (ok.replace("\"seeds\":[0]", "\"seeds\":[-1]"), "seeds"),
        ] {
            let err = SweepSpec::parse(&mutation).expect_err(&mutation);
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
        assert!(SweepSpec::parse("{nope").is_err());
    }

    #[test]
    fn smoke_specs_match_the_cli_smoke_modes() {
        // The serve tests rely on these constructors enumerating exactly
        // the jobs the golden files pin.
        let smoke = SweepSpec::smoke();
        assert_eq!(smoke.job_count(), 4);
        assert_eq!((smoke.grid_rows, smoke.grid_cols), (4, 4));
        assert_eq!(smoke.designs[0].design, ControllerDesign::SfqMimdNaive);
        assert_eq!(
            smoke.designs[1].design,
            ControllerDesign::DigiqOpt { bs: 8 }
        );
        let cosim = SweepSpec::cosim_smoke();
        assert_eq!(cosim.job_count(), 4);
        assert_eq!(
            cosim.designs[0].design,
            ControllerDesign::DigiqMin { bs: 2 }
        );
        assert_ne!(smoke.stable_key(), cosim.stable_key());
    }

    #[test]
    fn sessions_isolate_counters_over_a_shared_engine() {
        let engine = EvalEngine::new(CostModel::default());
        let spec = SweepSpec::smoke();
        // Warm the shared store through the engine's own root session.
        let cold = engine.run(&spec, 2);
        assert!(cold.cache.total_misses() > 0);

        // A fresh session on the warm engine sees its own counters only:
        // compile lookups are all hits charged to the session, and no
        // root-session history leaks in.
        let session = engine.session();
        let warm = session.run(&spec, 2);
        assert_eq!(cold.jobs, warm.jobs, "shared cache must not change results");
        assert_eq!(warm.cache.compile_misses, 0);
        assert_eq!(session.cache_stats().compile_misses, 0);
        assert!(session.cache_stats().compile_hits > 0);
        // Session pass stats: nothing was built by this session.
        assert!(session
            .pass_cache_stats()
            .passes
            .iter()
            .all(|p| p.misses == 0));

        // The engine's cumulative root counters are unchanged by the
        // session's activity on the compile side it owns.
        let root = engine.cache_stats();
        assert_eq!(root.compile_misses, cold.cache.compile_misses);
    }

    #[test]
    fn run_deterministic_matches_cold_cli_bytes_on_a_warm_engine() {
        let spec = SweepSpec::smoke();
        // What the batch CLI prints: a cold engine, golden-pinned bytes.
        let cli = EvalEngine::new(CostModel::default())
            .run(&spec, 2)
            .to_json_string();
        // A long-lived server engine, already warm from earlier requests.
        let engine = EvalEngine::new(CostModel::default());
        engine.run(&spec, 2);
        let served = engine.session().run_deterministic(&spec, 2);
        assert_eq!(served.to_json_string(), cli);
    }

    #[test]
    fn run_journaled_stops_on_the_stop_flag_and_resumes() {
        let dir = std::env::temp_dir().join(format!(
            "digiq-engine-stop-{}-{:x}",
            std::process::id(),
            SweepSpec::smoke().stable_key()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let spec = SweepSpec::smoke();
        let journal = SweepJournal::open(&dir, spec.stable_key()).unwrap();

        // A pre-flipped stop flag: no job is ever claimed, the run
        // reports interruption, nothing is journaled as complete.
        let engine = EvalEngine::new(CostModel::default());
        let stop = AtomicBool::new(true);
        let ctl = RunControl {
            interrupt_after: None,
            stop: Some(&stop),
        };
        let session = engine.session();
        assert_eq!(session.run_journaled(&spec, 2, &journal, false, ctl), None);

        // Resume with the flag clear: the journal fills in and the
        // merged report is byte-identical to an uninterrupted run.
        let resumed = session
            .run_journaled(&spec, 2, &journal, true, RunControl::default())
            .expect("uninterrupted resume completes");
        let uninterrupted = EvalEngine::new(CostModel::default()).run(&spec, 2);
        assert_eq!(resumed.to_json_string(), uninterrupted.to_json_string());
        std::fs::remove_dir_all(&dir).ok();
    }
}
