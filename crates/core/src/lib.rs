//! # digiq-core — the DigiQ controller architectures
//!
//! The paper's primary contribution, assembled from the substrate crates:
//!
//! * [`design`] — the Table I design space (`SFQ_MIMD_naive`,
//!   `SFQ_MIMD_decomp`, `DigiQ_min(BS)`, `DigiQ_opt(BS)`) and the timing /
//!   control-payload parameters of §IV;
//! * [`hardware`] — Fig 5's structure composed from synthesized `sfq_hw`
//!   modules, priced by the calibrated cost model (Fig 8a/8b/8c);
//! * [`exec`] — the analytic SIMD execution-time model with delay-slot
//!   contention (Fig 9);
//! * [`delay_model`] — the shared gate → delay-class / decomposition-depth
//!   assignment both execution engines draw from;
//! * [`cosim`] — the cycle-accurate controller co-simulator: per-group
//!   sequencers, double-buffered select staging, per-cycle traces, and
//!   exact differential validation of the analytic model;
//! * [`error_model`] — per-qubit / per-coupler gate errors under drift
//!   with full software calibration (Fig 10);
//! * [`scalability`] — qubits-per-10 W analysis (§VI-A3);
//! * [`system`] — the end-to-end facade (compile → route → schedule →
//!   execute → report);
//! * [`engine`] — the batched, multi-threaded sweep engine: declarative
//!   design × benchmark × seed specs sharded across scoped workers,
//!   deterministic for any worker count;
//! * [`store`] — the unified content-addressed artifact store behind the
//!   engine and the system facade: sharded build-once namespaces, LRU
//!   eviction under an optional capacity, optional disk persistence
//!   (`--cache-dir`) with atomic writes, and the sweep-resume journal.
//!
//! ## Quickstart
//!
//! ```
//! use digiq_core::design::ControllerDesign;
//! use digiq_core::system::DigiqSystem;
//! use sfq_hw::cost::CostModel;
//!
//! let system = DigiqSystem::build(ControllerDesign::DigiqOpt { bs: 8 }, 2,
//!                                 &CostModel::default());
//! let hw = system.hardware.as_ref().unwrap();
//! assert!(hw.report.power_w < 1.0); // fits the fridge with room to spare
//! ```

pub mod cosim;
pub mod delay_model;
pub mod design;
pub mod engine;
pub mod error_model;
pub mod exec;
pub mod hardware;
pub mod scalability;
pub mod store;
pub mod system;

pub use cosim::{CosimParams, CosimReport};
pub use design::{ControllerDesign, SystemConfig};
pub use engine::{CosimSweepReport, EvalEngine, SweepReport, SweepSpec};
pub use hardware::{build_hardware, DesignHardware};
pub use store::{Artifact, ArtifactStore, StoreConfig, StoreStats, SweepJournal};
pub use system::{BenchmarkReport, DigiqSystem};
