//! The SFQ controller design space (Table I, §IV-A1).
//!
//! Four single-qubit-gate controller organizations are compared throughout
//! the paper:
//!
//! | Design            | Storage                    | Scalability limit      |
//! |-------------------|----------------------------|------------------------|
//! | `SFQ_MIMD_naive`  | one ≤300-bit register/qubit| power, area, bandwidth |
//! | `SFQ_MIMD_decomp` | ≥2 registers/qubit         | power, area            |
//! | `DigiQ_min(BS)`   | BS registers/*group*       | — (high scalability)   |
//! | `DigiQ_opt(BS)`   | 1 register + delay line/group | — (high scalability)|
//!
//! plus the **Impossible MIMD** reference of Fig 9 (same gate times,
//! unlimited parallelism, physically unbuildable at scale).

use sfq_hw::json::{Json, ToJson};
use std::fmt;

/// A point in the controller design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControllerDesign {
    /// One tailored bitstream register per qubit, updated from room
    /// temperature on the fly.
    SfqMimdNaive,
    /// A per-qubit universal gate set (two registers) selected by one bit
    /// per qubit per cycle.
    SfqMimdDecomp,
    /// SIMD with a discrete broadcast basis of `bs` stored bitstreams per
    /// group.
    DigiqMin {
        /// Number of distinct broadcast basis gates.
        bs: usize,
    },
    /// SIMD with one stored Ry(π/2) bitstream per group, broadcast at
    /// `bs` distinct delays per cycle.
    DigiqOpt {
        /// Number of distinct delayed copies per cycle.
        bs: usize,
    },
    /// The unbuildable reference point: per-qubit tailored gates with
    /// unlimited parallelism (Fig 9's normalization baseline).
    ImpossibleMimd,
}

impl ControllerDesign {
    /// The `BS` parameter where meaningful.
    pub fn bs(&self) -> Option<usize> {
        match *self {
            ControllerDesign::DigiqMin { bs } | ControllerDesign::DigiqOpt { bs } => Some(bs),
            _ => None,
        }
    }

    /// True for the SIMD (DigiQ) designs.
    pub fn is_simd(&self) -> bool {
        matches!(
            self,
            ControllerDesign::DigiqMin { .. } | ControllerDesign::DigiqOpt { .. }
        )
    }
}

impl ToJson for ControllerDesign {
    // Externally tagged, matching the former serde derive: unit variants
    // render as their name, struct variants as {"Variant":{"bs":n}}.
    fn to_json(&self) -> Json {
        match *self {
            ControllerDesign::SfqMimdNaive => "SfqMimdNaive".to_json(),
            ControllerDesign::SfqMimdDecomp => "SfqMimdDecomp".to_json(),
            ControllerDesign::ImpossibleMimd => "ImpossibleMimd".to_json(),
            ControllerDesign::DigiqMin { bs } => {
                Json::obj([("DigiqMin", Json::obj([("bs", bs.to_json())]))])
            }
            ControllerDesign::DigiqOpt { bs } => {
                Json::obj([("DigiqOpt", Json::obj([("bs", bs.to_json())]))])
            }
        }
    }
}

impl ControllerDesign {
    /// Reads a design back from its [`ToJson`] form (unit variants as
    /// strings, struct variants externally tagged). The inverse of
    /// [`ControllerDesign::to_json`]; used by the sweep-report reader.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural mismatch.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        if let Some(name) = j.as_str() {
            return match name {
                "SfqMimdNaive" => Ok(ControllerDesign::SfqMimdNaive),
                "SfqMimdDecomp" => Ok(ControllerDesign::SfqMimdDecomp),
                "ImpossibleMimd" => Ok(ControllerDesign::ImpossibleMimd),
                other => Err(format!("unknown design variant `{other}`")),
            };
        }
        for (variant, make) in [
            (
                "DigiqMin",
                (|bs| ControllerDesign::DigiqMin { bs }) as fn(usize) -> _,
            ),
            ("DigiqOpt", |bs| ControllerDesign::DigiqOpt { bs }),
        ] {
            if let Some(body) = j.get(variant) {
                let bs = body.count_field("bs", variant)?;
                if bs == 0 {
                    return Err(format!("`{variant}.bs` must be a positive integer"));
                }
                return Ok(make(bs as usize));
            }
        }
        Err("expected a design name or tagged variant object".to_string())
    }
}

impl fmt::Display for ControllerDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ControllerDesign::SfqMimdNaive => write!(f, "SFQ_MIMD_naive"),
            ControllerDesign::SfqMimdDecomp => write!(f, "SFQ_MIMD_decomp"),
            ControllerDesign::DigiqMin { bs } => write!(f, "DigiQ_min(BS={bs})"),
            ControllerDesign::DigiqOpt { bs } => write!(f, "DigiQ_opt(BS={bs})"),
            ControllerDesign::ImpossibleMimd => write!(f, "Impossible_MIMD"),
        }
    }
}

/// Full system configuration for one evaluation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemConfig {
    /// Which controller architecture.
    pub design: ControllerDesign,
    /// Number of qubit groups `G` (grouping is static, by nominal
    /// frequency, §IV-A1).
    pub groups: usize,
    /// Total qubits driven.
    pub n_qubits: usize,
    /// Bitstream register capacity in bits (§IV-B: ≤300).
    pub register_bits: usize,
    /// SFQ chip clock period in ns (40 ps).
    pub clock_period_ns: f64,
    /// Delay steps `N` for DigiQ_opt (255).
    pub n_delays: usize,
    /// Longest basis-gate bitstream in clock ticks (10.12 ns → 253).
    pub bitstream_ticks: usize,
    /// CZ gate duration in ns (60, from §V-B).
    pub cz_ns: f64,
}

impl SystemConfig {
    /// The paper's evaluation defaults for a given design and group count.
    pub fn paper_default(design: ControllerDesign, groups: usize) -> Self {
        SystemConfig {
            design,
            groups,
            n_qubits: 1024,
            register_bits: 300,
            clock_period_ns: 0.040,
            n_delays: 255,
            bitstream_ticks: 253,
            cz_ns: 60.0,
        }
    }

    /// Qubits per group.
    pub fn qubits_per_group(&self) -> usize {
        self.n_qubits.div_ceil(self.groups.max(1))
    }

    /// Controller-cycle duration in ns (§VI-B: 20.32 ns for DigiQ_opt —
    /// 10.12 ns of bitstream plus 255 delay ticks; 10.12 ns for the
    /// others, whose cycle is one bitstream).
    pub fn cycle_ns(&self) -> f64 {
        let bs_ns = self.bitstream_ticks as f64 * self.clock_period_ns;
        match self.design {
            ControllerDesign::DigiqOpt { .. } => {
                bs_ns + self.n_delays as f64 * self.clock_period_ns
            }
            _ => bs_ns,
        }
    }

    /// Controller-cycle duration in integer SFQ clock ticks — the exact
    /// time base of the cycle-accurate co-simulator
    /// ([`crate::cosim`]): 253 ticks for the one-bitstream designs,
    /// 253 + 255 = 508 for DigiQ_opt's bitstream-plus-delay-window cycle.
    pub fn cycle_ticks(&self) -> u64 {
        match self.design {
            ControllerDesign::DigiqOpt { .. } => (self.bitstream_ticks + self.n_delays) as u64,
            _ => self.bitstream_ticks as u64,
        }
    }

    /// CZ duration in integer SFQ clock ticks (60 ns / 40 ps = 1500),
    /// rounded to the nearest tick for non-grid-aligned configurations.
    pub fn cz_ticks(&self) -> u64 {
        (self.cz_ns / self.clock_period_ns).round() as u64
    }

    /// Minimum controller cycle assumed for cable sizing (§VI-A4: 9 ns for
    /// DigiQ_min, plus the 10.2 ns delay window for DigiQ_opt).
    pub fn cable_cycle_ns(&self) -> f64 {
        match self.design {
            ControllerDesign::DigiqOpt { .. } => 9.0 + self.n_delays as f64 * self.clock_period_ns,
            _ => 9.0,
        }
    }

    /// CZ duration in controller cycles (the paper: 60 ns "expands over
    /// three controller cycles" for DigiQ_opt).
    pub fn cz_cycles(&self) -> usize {
        (self.cz_ns / self.cycle_ns()).ceil() as usize
    }

    /// Per-qubit select bits per cycle: choose one of `BS` gates, a 2q
    /// start/stop, or nothing (§VI-A4).
    pub fn sel_bits_per_qubit(&self) -> usize {
        let options = match self.design {
            ControllerDesign::SfqMimdNaive => return self.register_bits, // streams raw bits
            ControllerDesign::SfqMimdDecomp => 2 + 3,
            ControllerDesign::DigiqMin { bs } | ControllerDesign::DigiqOpt { bs } => bs + 3,
            ControllerDesign::ImpossibleMimd => return 0,
        };
        (usize::BITS - (options - 1).leading_zeros()) as usize
    }

    /// Extra per-group bits per cycle (DigiQ_opt's `BS_sel` delay values:
    /// `BS × log2(N+1)` bits, §VI-A4).
    pub fn group_bits_per_cycle(&self) -> usize {
        match self.design {
            ControllerDesign::DigiqOpt { bs } => {
                let delay_bits = (usize::BITS - self.n_delays.leading_zeros()) as usize;
                bs * delay_bits
            }
            _ => 0,
        }
    }

    /// Total control payload bits per controller cycle.
    pub fn payload_bits_per_cycle(&self) -> u64 {
        self.n_qubits as u64 * self.sel_bits_per_qubit() as u64
            + self.groups as u64 * self.group_bits_per_cycle() as u64
    }
}

impl ToJson for SystemConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("design", self.design.to_json()),
            ("groups", self.groups.to_json()),
            ("n_qubits", self.n_qubits.to_json()),
            ("register_bits", self.register_bits.to_json()),
            ("clock_period_ns", self.clock_period_ns.to_json()),
            ("n_delays", self.n_delays.to_json()),
            ("bitstream_ticks", self.bitstream_ticks.to_json()),
            ("cz_ns", self.cz_ns.to_json()),
        ])
    }
}

/// A Table I row, rendered programmatically.
#[derive(Debug, Clone)]
pub struct DesignSpaceRow {
    /// Design name.
    pub design: String,
    /// Scalability limiter.
    pub scalability: &'static str,
    /// Execution behaviour.
    pub execution: &'static str,
    /// Where pulse calibration happens.
    pub calibration: &'static str,
}

impl ToJson for DesignSpaceRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("design", self.design.to_json()),
            ("scalability", self.scalability.to_json()),
            ("execution", self.execution.to_json()),
            ("calibration", self.calibration.to_json()),
        ])
    }
}

/// Regenerates Table I.
pub fn design_space_table() -> Vec<DesignSpaceRow> {
    vec![
        DesignSpaceRow {
            design: ControllerDesign::SfqMimdNaive.to_string(),
            scalability: "limited by power, area, and bandwidth",
            execution: "no gate serialization",
            calibration: "hardware",
        },
        DesignSpaceRow {
            design: ControllerDesign::SfqMimdDecomp.to_string(),
            scalability: "limited by power and area",
            execution: "no gate serialization",
            calibration: "hardware",
        },
        DesignSpaceRow {
            design: ControllerDesign::DigiqMin { bs: 2 }.to_string(),
            scalability: "high scalability",
            execution: "long decompositions",
            calibration: "software",
        },
        DesignSpaceRow {
            design: ControllerDesign::DigiqOpt { bs: 8 }.to_string(),
            scalability: "high scalability",
            execution: "potential serialization",
            calibration: "software",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_times_match_paper() {
        let opt = SystemConfig::paper_default(ControllerDesign::DigiqOpt { bs: 8 }, 2);
        assert!((opt.cycle_ns() - 20.32).abs() < 1e-9, "{}", opt.cycle_ns());
        let min = SystemConfig::paper_default(ControllerDesign::DigiqMin { bs: 2 }, 2);
        assert!((min.cycle_ns() - 10.12).abs() < 1e-9);
        assert!((opt.cable_cycle_ns() - 19.2).abs() < 1e-9);
        assert!((min.cable_cycle_ns() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn tick_counts_are_exact() {
        let opt = SystemConfig::paper_default(ControllerDesign::DigiqOpt { bs: 8 }, 2);
        assert_eq!(opt.cycle_ticks(), 508);
        assert_eq!(opt.cz_ticks(), 1500);
        let min = SystemConfig::paper_default(ControllerDesign::DigiqMin { bs: 2 }, 2);
        assert_eq!(min.cycle_ticks(), 253);
        assert_eq!(min.cz_ticks(), 1500);
        // Tick counts agree with the ns-domain durations.
        assert!((opt.cycle_ticks() as f64 * opt.clock_period_ns - opt.cycle_ns()).abs() < 1e-9);
        assert!((min.cz_ticks() as f64 * min.clock_period_ns - min.cz_ns).abs() < 1e-9);
    }

    #[test]
    fn cz_spans_three_opt_cycles() {
        let opt = SystemConfig::paper_default(ControllerDesign::DigiqOpt { bs: 16 }, 2);
        assert_eq!(opt.cz_cycles(), 3);
        let min = SystemConfig::paper_default(ControllerDesign::DigiqMin { bs: 2 }, 2);
        assert_eq!(min.cz_cycles(), 6);
    }

    #[test]
    fn select_bit_widths() {
        let min2 = SystemConfig::paper_default(ControllerDesign::DigiqMin { bs: 2 }, 2);
        assert_eq!(min2.sel_bits_per_qubit(), 3); // 5 options → 3 bits
        let opt16 = SystemConfig::paper_default(ControllerDesign::DigiqOpt { bs: 16 }, 2);
        assert_eq!(opt16.sel_bits_per_qubit(), 5); // 19 options → 5 bits
        let naive = SystemConfig::paper_default(ControllerDesign::SfqMimdNaive, 1);
        assert_eq!(naive.sel_bits_per_qubit(), 300);
    }

    #[test]
    fn group_bits_only_for_opt() {
        let opt = SystemConfig::paper_default(ControllerDesign::DigiqOpt { bs: 16 }, 2);
        assert_eq!(opt.group_bits_per_cycle(), 16 * 8);
        let min = SystemConfig::paper_default(ControllerDesign::DigiqMin { bs: 4 }, 2);
        assert_eq!(min.group_bits_per_cycle(), 0);
    }

    #[test]
    fn payload_matches_cable_test_vectors() {
        // The §VI-A4 points validated in `sfq_hw::cables`.
        let min2 = SystemConfig::paper_default(ControllerDesign::DigiqMin { bs: 2 }, 2);
        assert_eq!(min2.payload_bits_per_cycle(), 3 * 1024);
        let opt16 = SystemConfig::paper_default(ControllerDesign::DigiqOpt { bs: 16 }, 2);
        assert_eq!(opt16.payload_bits_per_cycle(), 5 * 1024 + 2 * 128);
    }

    #[test]
    fn display_names() {
        assert_eq!(ControllerDesign::SfqMimdNaive.to_string(), "SFQ_MIMD_naive");
        assert_eq!(
            ControllerDesign::DigiqOpt { bs: 8 }.to_string(),
            "DigiQ_opt(BS=8)"
        );
        assert!(ControllerDesign::DigiqMin { bs: 2 }.is_simd());
        assert!(!ControllerDesign::ImpossibleMimd.is_simd());
        assert_eq!(ControllerDesign::DigiqOpt { bs: 4 }.bs(), Some(4));
    }

    #[test]
    fn design_json_round_trips() {
        for d in [
            ControllerDesign::SfqMimdNaive,
            ControllerDesign::SfqMimdDecomp,
            ControllerDesign::ImpossibleMimd,
            ControllerDesign::DigiqMin { bs: 2 },
            ControllerDesign::DigiqOpt { bs: 16 },
        ] {
            assert_eq!(ControllerDesign::from_json(&d.to_json()), Ok(d));
        }
        assert!(ControllerDesign::from_json(&"Bogus".to_json()).is_err());
        assert!(ControllerDesign::from_json(&Json::obj([(
            "DigiqMin",
            Json::obj([("bs", Json::Num(-1.0))])
        )]))
        .is_err());
        assert!(ControllerDesign::from_json(&Json::Num(3.0)).is_err());
    }

    #[test]
    fn table_one_rows() {
        let t = design_space_table();
        assert_eq!(t.len(), 4);
        assert!(t[0].design.contains("naive"));
        assert_eq!(t[2].calibration, "software");
    }

    #[test]
    fn groups_divide_qubits() {
        let c = SystemConfig::paper_default(ControllerDesign::DigiqMin { bs: 2 }, 4);
        assert_eq!(c.qubits_per_group(), 256);
    }
}
