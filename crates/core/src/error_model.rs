//! Gate-error model across the machine (Fig 10).
//!
//! Combines the calibration layer with the Monte-Carlo drift population to
//! produce the paper's per-qubit and per-coupler error statistics:
//!
//! * **Fig 10a** — median single-qubit gate error per qubit, for
//!   DigiQ_opt (delay decomposition on the drifted basis) and DigiQ_min
//!   (sequence search over the drifted discrete basis). Medians are taken
//!   over a deterministic stratified sample of target gates
//!   (Cliffords + Haar-like rotations; DESIGN.md substitution #5).
//! * **Fig 10b** — CZ error per grid coupler: the shared flux pulse
//!   produces a drifted `Uqq` per pair; the echo calibration of
//!   `calib::cz` composes the best 1–2-pulse CZ, and the surrounding
//!   single-qubit gates contribute their own decomposition error.
//!
//! Work is parallelized over qubits/couplers with scoped threads.

use crate::store::{ns, ArtifactStore};
use calib::bitstream::{basis_op_for_qubit, find_bitstream, SearchConfig, ZFreedom};
use calib::cz::{calibrate_shared_pulse, cz_error_with_local_1q, uqq_for_drift, SharedCzPulse};
use calib::drift::{sample_population, DriftModel, SampledQubit};
use calib::min_decomp::{decompose_min, MinBasis, SequenceDb};
use calib::opt_decomp::{decompose_opt_with, OptBasis, OptTables};
use qsim::matrix::CMat;
use qsim::optimize::GaConfig;
use qsim::pulse::SfqParams;
use qsim::rng::stable_hash_str;
use qsim::rng::StdRng;
use qsim::transmon::Transmon;
use qsim::two_qubit::CoupledTransmons;
use sfq_hw::json::{Json, ToJson};
use std::f64::consts::PI;

/// Configuration of the error-model evaluation.
#[derive(Debug, Clone)]
pub struct ErrorModelConfig {
    /// Grid columns (qubit index → position).
    pub grid_cols: usize,
    /// Number of qubits to evaluate.
    pub n_qubits: usize,
    /// Parking frequencies (checkerboard assignment).
    pub parking_ghz: Vec<f64>,
    /// Drift/variability model.
    pub drift: DriftModel,
    /// Target gates sampled per qubit for the median.
    pub n_targets: usize,
    /// DigiQ_min meet-in-the-middle half depth.
    pub min_half_depth: usize,
    /// GA budget for the shared-bitstream searches.
    pub ga: GaConfig,
    /// Worker threads.
    pub threads: usize,
}

impl Default for ErrorModelConfig {
    fn default() -> Self {
        ErrorModelConfig {
            grid_cols: 32,
            n_qubits: 1024,
            parking_ghz: vec![6.21286, 4.14238],
            drift: DriftModel::default(),
            n_targets: 24,
            min_half_depth: 10,
            ga: GaConfig {
                population: 48,
                generations: 60,
                ..GaConfig::default()
            },
            threads: 8,
        }
    }
}

impl ErrorModelConfig {
    /// A small configuration for tests and examples.
    pub fn small(n_qubits: usize) -> Self {
        ErrorModelConfig {
            grid_cols: 4,
            n_qubits,
            n_targets: 8,
            min_half_depth: 8,
            ga: GaConfig {
                population: 24,
                generations: 25,
                ..GaConfig::default()
            },
            threads: 4,
            ..ErrorModelConfig::default()
        }
    }
}

/// Deterministic stratified target-gate sample.
pub fn target_sample(n: usize, seed: u64) -> Vec<CMat> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut targets = vec![
        qsim::gates::h(),
        qsim::gates::x(),
        qsim::gates::s(),
        qsim::gates::t(),
    ];
    while targets.len() < n {
        targets.push(qsim::gates::u_zyz(
            rng.gen_range(0.0..PI),
            rng.gen_range(-PI..PI),
            rng.gen_range(-PI..PI),
        ));
    }
    targets.truncate(n);
    targets
}

/// Per-qubit Fig 10a record.
#[derive(Debug, Clone)]
pub struct QubitErrorRow {
    /// Physical qubit index.
    pub qubit: usize,
    /// Frequency drift in GHz.
    pub drift_ghz: f64,
    /// Median 1q gate error on DigiQ_opt.
    pub opt_median: f64,
    /// Median 1q gate error on DigiQ_min.
    pub min_median: f64,
}

impl ToJson for QubitErrorRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("qubit", self.qubit.to_json()),
            ("drift_ghz", self.drift_ghz.to_json()),
            ("opt_median", self.opt_median.to_json()),
            ("min_median", self.min_median.to_json()),
        ])
    }
}

fn median(mut v: Vec<f64>) -> f64 {
    // total_cmp: a NaN error (pathological basis) must not panic the
    // whole sweep; NaNs sort to the ends and the median stays meaningful.
    v.sort_by(|a, b| a.total_cmp(b));
    if v.is_empty() {
        return f64::NAN;
    }
    v[v.len() / 2]
}

/// Content key for a drifted qubit's memoized [`OptTables`]: exact bits
/// of the basis block plus the delay-lattice parameters.
fn opt_tables_key(basis: &OptBasis) -> u64 {
    let mut words = Vec::with_capacity(10);
    for e in basis.ubs.as_slice() {
        words.push(e.re.to_bits());
        words.push(e.im.to_bits());
    }
    words.push(basis.phase_per_tick.to_bits());
    words.push(basis.n_delays as u64);
    stable_hash_str("calib/opt_tables", &words)
}

/// Content key for a drifted qubit's memoized [`SequenceDb`]: exact bits
/// of every basis block plus the half depth.
fn seq_db_key(basis: &MinBasis, half_depth: usize) -> u64 {
    let mut words = Vec::with_capacity(basis.ops.len() * 8 + 1);
    for op in &basis.ops {
        for e in op.as_slice() {
            words.push(e.re.to_bits());
            words.push(e.im.to_bits());
        }
    }
    words.push(half_depth as u64);
    stable_hash_str("calib/seq_db", &words)
}

/// The shared calibration artifacts (found once, broadcast to all qubits —
/// this is what makes the architecture SIMD).
#[derive(Debug, Clone)]
pub struct SharedCalibration {
    /// Ry(π/2) bitstream per parking frequency (DigiQ_opt).
    pub ry_bits: Vec<Vec<bool>>,
    /// {Ry(π/2), T} bitstreams per parking frequency (DigiQ_min).
    pub min_bits: Vec<[Vec<bool>; 2]>,
    /// Pulse parameters used for the opt search.
    pub opt_params: SfqParams,
    /// Pulse parameters used for the min search (larger tip angle so the
    /// T composite fits the register, see DESIGN.md).
    pub min_params: SfqParams,
}

/// Finds the shared bitstreams for every parking frequency (§V-A step 1).
pub fn calibrate_shared(config: &ErrorModelConfig) -> SharedCalibration {
    let opt_params = SfqParams::default();
    let min_params = SfqParams {
        delta_theta: (PI / 2.0) / 16.0,
        ..SfqParams::default()
    };
    let mut ry_bits = Vec::new();
    let mut min_bits = Vec::new();
    for &f in &config.parking_ghz {
        let length = if f > 5.0 { 253 } else { 225 };
        let sc = SearchConfig {
            length,
            ga: config.ga,
        };
        let ry = find_bitstream(
            Transmon::new(f),
            opt_params,
            &qsim::gates::ry(PI / 2.0),
            ZFreedom::PrePost,
            &sc,
        );
        ry_bits.push(ry.bits);
        let ry_min = find_bitstream(
            Transmon::new(f),
            min_params,
            &qsim::gates::ry(PI / 2.0),
            ZFreedom::None,
            &sc,
        );
        let t_min = find_bitstream(
            Transmon::new(f),
            min_params,
            &qsim::gates::t(),
            ZFreedom::None,
            &sc,
        );
        min_bits.push([ry_min.bits, t_min.bits]);
    }
    SharedCalibration {
        ry_bits,
        min_bits,
        opt_params,
        min_params,
    }
}

/// Evaluates Fig 10a: per-qubit median single-qubit gate error for both
/// DigiQ designs, over the sampled drift population.
pub fn fig10a(config: &ErrorModelConfig, shared: &SharedCalibration) -> Vec<QubitErrorRow> {
    fig10a_with_store(config, shared, &ArtifactStore::in_memory())
}

/// [`fig10a`] with an explicit artifact store: the per-qubit search
/// artifacts (prebuilt [`OptTables`] and [`SequenceDb`]) are memoized in
/// the store's [`ns::CALIB_MEMO`] namespace, keyed by exact basis
/// content. Qubits whose drifted bases coincide (zero-drift populations,
/// repeat sweeps over the same population) share one build instead of
/// redoing the dominant per-qubit setup cost.
pub fn fig10a_with_store(
    config: &ErrorModelConfig,
    shared: &SharedCalibration,
    store: &ArtifactStore,
) -> Vec<QubitErrorRow> {
    let population = sample_population(
        config.grid_cols,
        config.n_qubits,
        &config.parking_ghz,
        &config.drift,
    );
    let targets = target_sample(config.n_targets, 0xF160_10A0);

    let eval_qubit = |q: &SampledQubit| -> QubitErrorRow {
        let class = config
            .parking_ghz
            .iter()
            .position(|&f| (f - q.nominal_ghz).abs() < 1e-9)
            .unwrap_or(0);
        let actual = Transmon::new(q.actual_ghz);

        // DigiQ_opt: recompute the basis op under drift, then decompose
        // against the memoized delay tables.
        let ubs = basis_op_for_qubit(&shared.ry_bits[class], actual, shared.opt_params);
        let basis = OptBasis::new(&ubs, q.actual_ghz, shared.opt_params.clock_period_ns, 255);
        let tables = store.get_or_build(ns::CALIB_MEMO, opt_tables_key(&basis), || {
            OptTables::build(&basis)
        });
        let opt_errors: Vec<f64> = targets
            .iter()
            .map(|t| decompose_opt_with(&tables, t, 0.0, 3, 1e-4).error)
            .collect();

        // DigiQ_min: drifted discrete basis, sequence search over the
        // memoized database.
        let b0 = basis_op_for_qubit(&shared.min_bits[class][0], actual, shared.min_params)
            .top_left_block(2);
        let b1 = basis_op_for_qubit(&shared.min_bits[class][1], actual, shared.min_params)
            .top_left_block(2);
        let min_basis = MinBasis::new(vec![b0, b1]);
        let db = store.get_or_build(
            ns::CALIB_MEMO,
            seq_db_key(&min_basis, config.min_half_depth),
            || SequenceDb::build(&min_basis, config.min_half_depth),
        );
        let min_errors: Vec<f64> = targets
            .iter()
            .map(|t| decompose_min(t, &min_basis, &db, 1e-4).error)
            .collect();

        QubitErrorRow {
            qubit: q.index,
            drift_ghz: q.drift_ghz(),
            opt_median: median(opt_errors),
            min_median: median(min_errors),
        }
    };

    // Scoped parallel map over the population.
    let threads = config.threads.max(1);
    let chunk = population.len().div_ceil(threads);
    let mut rows: Vec<QubitErrorRow> = Vec::with_capacity(population.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = population
            .chunks(chunk)
            .map(|part| s.spawn(|| part.iter().map(&eval_qubit).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            rows.extend(h.join().expect("worker panicked"));
        }
    });
    rows.sort_by_key(|r| r.qubit);
    rows
}

/// Per-coupler Fig 10b record.
#[derive(Debug, Clone)]
pub struct CouplerErrorRow {
    /// Coupler index (grid enumeration order).
    pub coupler: usize,
    /// The two physical qubits.
    pub qubits: (usize, usize),
    /// Composed CZ error (echo-optimized Uqq + 1q contributions).
    pub cz_error: f64,
}

impl ToJson for CouplerErrorRow {
    fn to_json(&self) -> Json {
        Json::obj([
            ("coupler", self.coupler.to_json()),
            ("qubits", self.qubits.to_json()),
            ("cz_error", self.cz_error.to_json()),
        ])
    }
}

/// Evaluates Fig 10b over (a sample of) the grid couplers.
///
/// `oneq_error` supplies the per-qubit single-qubit error (from
/// [`fig10a`]) folded in for the gates flanking each `Uqq`;
/// `coupler_stride` subsamples the 1984 couplers (1 = all).
pub fn fig10b(
    config: &ErrorModelConfig,
    oneq_error: &[f64],
    coupler_stride: usize,
) -> Vec<CouplerErrorRow> {
    let grid =
        qcircuit::topology::Grid::new(config.n_qubits.div_ceil(config.grid_cols), config.grid_cols);
    let population = sample_population(
        config.grid_cols,
        config.n_qubits,
        &config.parking_ghz,
        &config.drift,
    );
    let nominal =
        CoupledTransmons::paper_pair(config.parking_ghz[0], *config.parking_ghz.last().unwrap());
    let pulse: SharedCzPulse = calibrate_shared_pulse(&nominal, 4.0, 0.25);

    let couplers: Vec<(usize, (usize, usize))> = grid
        .couplers()
        .into_iter()
        .enumerate()
        .step_by(coupler_stride.max(1))
        .collect();

    let eval = |&(idx, (a, b)): &(usize, (usize, usize))| -> CouplerErrorRow {
        // Identify the high-frequency (flux-tuned) qubit of the pair.
        let (hi, lo) = if population[a].nominal_ghz >= population[b].nominal_ghz {
            (a, b)
        } else {
            (b, a)
        };
        let uqq = uqq_for_drift(
            &nominal,
            &pulse,
            population[hi].drift_ghz(),
            population[lo].drift_ghz(),
            population[hi].current_scale,
        );
        let e1 = cz_error_with_local_1q(&uqq, 1, 2, 0xF160_10B0 + idx as u64);
        let e2 = cz_error_with_local_1q(&uqq, 2, 2, 0xF160_10B1 + idx as u64);
        let echo = e1.min(e2);
        // Surrounding single-qubit gates (2 layers × 2 qubits).
        let oneq = 2.0
            * (oneq_error.get(a).copied().unwrap_or(0.0)
                + oneq_error.get(b).copied().unwrap_or(0.0));
        CouplerErrorRow {
            coupler: idx,
            qubits: (a, b),
            cz_error: qsim::fidelity::circuit_error([echo, oneq]),
        }
    };

    let threads = config.threads.max(1);
    let chunk = couplers.len().div_ceil(threads);
    let mut rows: Vec<CouplerErrorRow> = Vec::with_capacity(couplers.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = couplers
            .chunks(chunk)
            .map(|part| s.spawn(|| part.iter().map(&eval).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            rows.extend(h.join().expect("worker panicked"));
        }
    });
    rows.sort_by_key(|r| r.coupler);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_sample_is_deterministic_and_sized() {
        let a = target_sample(10, 1);
        let b = target_sample(10, 1);
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.approx_eq(y, 0.0));
        }
    }

    #[test]
    fn small_fig10a_produces_sane_errors() {
        let config = ErrorModelConfig::small(8);
        let shared = calibrate_shared(&config);
        let rows = fig10a(&config, &shared);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(
                r.opt_median.is_finite() && r.opt_median < 0.1,
                "opt median {:.2e} at q{}",
                r.opt_median,
                r.qubit
            );
            assert!(
                r.min_median.is_finite() && r.min_median < 0.2,
                "min median {:.2e} at q{}",
                r.min_median,
                r.qubit
            );
            assert!(r.opt_median >= 0.0 && r.min_median >= 0.0);
        }
    }

    #[test]
    fn fig10a_memoizes_search_artifacts_per_basis() {
        let config = ErrorModelConfig::small(4);
        let shared = calibrate_shared(&config);
        let store = ArtifactStore::in_memory();
        let first = fig10a_with_store(&config, &shared, &store);
        let after_first = store.namespace_stats(ns::CALIB_MEMO);
        // One OptTables + one SequenceDb per distinct drifted basis.
        assert!(after_first.builds >= 2, "nothing memoized");
        let second = fig10a_with_store(&config, &shared, &store);
        let after_second = store.namespace_stats(ns::CALIB_MEMO);
        assert_eq!(
            after_second.builds, after_first.builds,
            "repeat sweep must reuse every memoized artifact"
        );
        assert!(after_second.hits > after_first.hits);
        for (a, b) in first.iter().zip(second.iter()) {
            assert_eq!(a.opt_median.to_bits(), b.opt_median.to_bits());
            assert_eq!(a.min_median.to_bits(), b.min_median.to_bits());
        }
    }

    #[test]
    fn small_fig10b_produces_sane_errors() {
        let config = ErrorModelConfig::small(8);
        let oneq = vec![2e-4; 8];
        let rows = fig10b(&config, &oneq, 4);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(
                r.cz_error.is_finite() && r.cz_error < 0.2,
                "cz error {:.2e}",
                r.cz_error
            );
            // 1q contribution is folded in: error exceeds it.
            assert!(r.cz_error > 4.0 * 2e-4 * 0.5);
        }
    }
}
