//! End-to-end DigiQ system facade.
//!
//! Ties the whole reproduction together: pick a design point, and the
//! system compiles a benchmark through the full §VI-B pipeline
//! (generate → lower → route on the 32×32 grid → lower SWAPs →
//! crosstalk-aware schedule → execute), reporting execution time
//! normalized to the Impossible MIMD baseline (Fig 9) alongside the
//! synthesized hardware cost (Fig 8).

use crate::design::{ControllerDesign, SystemConfig};
use crate::exec::{checkerboard_groups, execute, ExecParams, ExecReport};
use crate::hardware::{build_hardware, DesignHardware};
use crate::store::{self, ns, ArtifactStore};
use calib::min_decomp::{decompose_min, MinBasis, SequenceDb};
use qcircuit::bench::Benchmark;
use qcircuit::ir::Circuit;
use qcircuit::mapping::Layout;
use qcircuit::pipeline::{CompileArtifact, PassMetrics, Pipeline, PipelineConfig};
use qcircuit::topology::Grid;
use sfq_hw::cost::CostModel;
use sfq_hw::json::{Json, ToJson};

/// A configured DigiQ controller ready to evaluate workloads.
#[derive(Debug)]
pub struct DigiqSystem {
    /// The design point.
    pub config: SystemConfig,
    /// The device grid.
    pub grid: Grid,
    /// Synthesized hardware (absent for the Impossible MIMD reference).
    pub hardware: Option<DesignHardware>,
    /// The shared compile pass pipeline (same [`Pipeline::standard`] the
    /// evaluation engine runs — the two can never drift).
    pipeline: Pipeline,
    exec_params: ExecParams,
}

/// Evaluation result for one benchmark (one Fig 9 bar).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Logical gates before routing.
    pub logical_gates: usize,
    /// SWAPs inserted by routing.
    pub swaps: usize,
    /// Schedule slots.
    pub slots: usize,
    /// Execution accounting under this design.
    pub exec: ExecReport,
    /// Execution time normalized to Impossible MIMD (Fig 9's y-axis).
    pub normalized_time: f64,
}

impl ToJson for BenchmarkReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("benchmark", self.benchmark.to_json()),
            ("logical_gates", self.logical_gates.to_json()),
            ("swaps", self.swaps.to_json()),
            ("slots", self.slots.to_json()),
            ("exec", self.exec.to_json()),
            ("normalized_time", self.normalized_time.to_json()),
        ])
    }
}

impl BenchmarkReport {
    /// Reads a report back from its [`ToJson`] form — the inverse of
    /// [`BenchmarkReport::to_json`], used by the sweep-report reader.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "benchmark report";
        Ok(BenchmarkReport {
            benchmark: j.str_field("benchmark", CTX)?.to_string(),
            logical_gates: j.count_field("logical_gates", CTX)? as usize,
            swaps: j.count_field("swaps", CTX)? as usize,
            slots: j.count_field("slots", CTX)? as usize,
            exec: ExecReport::from_json(j.get("exec").ok_or("benchmark report missing `exec`")?)?,
            normalized_time: j.num_field("normalized_time", CTX)?,
        })
    }
}

impl DigiqSystem {
    /// Builds a system at a design point with the default compile
    /// pipeline, deriving the DigiQ_min decomposition-length distribution
    /// from real `calib` sequence searches on the ideal basis set.
    pub fn build(design: ControllerDesign, groups: usize, model: &CostModel) -> Self {
        DigiqSystem::build_with(design, groups, model, PipelineConfig::default())
    }

    /// [`DigiqSystem::build`] with an explicit compile-pipeline strategy
    /// selection (routing / scheduling / fusion). Build artifacts go
    /// through a private transient [`ArtifactStore`]; share one across
    /// systems (and engines) with [`DigiqSystem::build_shared`].
    pub fn build_with(
        design: ControllerDesign,
        groups: usize,
        model: &CostModel,
        pipeline: PipelineConfig,
    ) -> Self {
        DigiqSystem::build_shared(design, groups, model, pipeline, &ArtifactStore::in_memory())
    }

    /// [`DigiqSystem::build_with`] over a shared artifact store: the
    /// expensive build inputs — synthesized hardware and the measured
    /// decomposition-length distribution (with its sequence database) —
    /// are fetched through the store under the same content keys the
    /// evaluation engine uses, so systems sharing a store with each other
    /// or with an [`crate::engine::EvalEngine`] build each artifact at
    /// most once.
    pub fn build_shared(
        design: ControllerDesign,
        groups: usize,
        model: &CostModel,
        pipeline: PipelineConfig,
        store: &ArtifactStore,
    ) -> Self {
        let config = SystemConfig::paper_default(design, groups);
        let grid = Grid::paper_grid();
        let hardware = if design == ControllerDesign::ImpossibleMimd {
            None
        } else {
            let hw = store.get_or_build(ns::HARDWARE, store::hardware_key(design, groups), || {
                build_hardware(&config, model)
            });
            Some((*hw).clone())
        };
        let mut exec_params = ExecParams::new(config);
        if matches!(
            design,
            ControllerDesign::DigiqMin { .. } | ControllerDesign::SfqMimdDecomp
        ) {
            let kind = MinBasisKind::for_design(design);
            let db = store.get_or_build(ns::SEQ_DB, store::basis_kind_key(kind), || {
                SequenceDb::build(&kind.basis(), kind.half_depth())
            });
            let lengths = store.get_or_build(ns::MIN_LENGTHS, store::basis_kind_key(kind), || {
                measured_min_lengths_with_db(&kind.basis(), &db)
            });
            exec_params.min_lengths = (*lengths).clone();
        }
        DigiqSystem {
            config,
            grid,
            hardware,
            pipeline: Pipeline::standard(&pipeline),
            exec_params,
        }
    }

    /// [`DigiqSystem::build_shared`] over a live
    /// [`crate::engine::EvalEngine`]: the system shares the engine's
    /// cost model and artifact store, so a one-off system build beside
    /// a long-lived engine (the digiq-serve daemon inspecting a single
    /// design point) reuses whatever hardware and sequence databases
    /// the engine's sweeps already built — and seeds them for the
    /// sweeps that follow.
    pub fn build_for_engine(
        engine: &crate::engine::EvalEngine,
        design: ControllerDesign,
        groups: usize,
        pipeline: PipelineConfig,
    ) -> Self {
        DigiqSystem::build_shared(design, groups, engine.model(), pipeline, engine.store())
    }

    /// The compile pass pipeline this system runs.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The §VI-B compile pipeline both evaluation modes share — the
    /// system's [`Pipeline`] (default: lower → route (snake) → lower
    /// SWAPs → crosstalk-aware schedule, post-validated per pass), plus
    /// the checkerboard group map. Returns the final artifact, its
    /// per-pass metrics, and the group map.
    fn compile(&self, circuit: &Circuit) -> (CompileArtifact, Vec<PassMetrics>, Vec<usize>) {
        let artifact = CompileArtifact::new(
            circuit.clone(),
            Layout::snake(circuit.n_qubits(), &self.grid),
        );
        let (artifact, metrics) = self
            .pipeline
            .run(artifact, &self.grid)
            .unwrap_or_else(|e| panic!("compile pipeline: {e}"));
        let groups = checkerboard_groups(
            self.grid.cols(),
            self.grid.n_qubits(),
            self.config.groups.min(2).max(1),
        );
        (artifact, metrics, groups)
    }

    /// Compiles a circuit through the pass pipeline and returns the
    /// per-pass [`PassMetrics`] (wall time, gate/SWAP/slot deltas).
    pub fn compile_metrics(&self, circuit: &Circuit) -> Vec<PassMetrics> {
        self.compile(circuit).1
    }

    /// Compiles and executes a circuit through the full pipeline.
    pub fn evaluate_circuit(&self, name: &str, circuit: &Circuit) -> BenchmarkReport {
        let (compiled, _, groups) = self.compile(circuit);
        let slots = compiled.scheduled();
        let exec = execute(&compiled.circuit, slots, &groups, &self.exec_params);

        let mut base = self.exec_params.clone();
        base.config.design = ControllerDesign::ImpossibleMimd;
        let base_exec = execute(&compiled.circuit, slots, &groups, &base);

        BenchmarkReport {
            benchmark: name.to_string(),
            logical_gates: compiled.logical_gates,
            swaps: compiled.swaps,
            slots: slots.len(),
            normalized_time: exec.total_ns / base_exec.total_ns.max(f64::MIN_POSITIVE),
            exec,
        }
    }

    /// Evaluates one of the paper's Table IV benchmarks at paper scale.
    pub fn evaluate_benchmark(&self, bench: Benchmark) -> BenchmarkReport {
        let circuit = bench.paper_scale();
        self.evaluate_circuit(bench.name(), &circuit)
    }

    /// Runs the cycle-accurate co-simulator ([`crate::cosim`]) on a
    /// circuit through the same compile pipeline as
    /// [`DigiqSystem::evaluate_circuit`] (shared `compile` helper) —
    /// identical routing, scheduling, group map and execution parameters,
    /// so the returned report is exactly comparable to the analytic one
    /// (see [`crate::cosim::diff_analytic`]).
    pub fn cosimulate_circuit(&self, circuit: &Circuit, trace: bool) -> crate::cosim::CosimReport {
        let (compiled, _, groups) = self.compile(circuit);
        let mut params = crate::cosim::CosimParams::new(self.exec_params.clone());
        params.trace = trace;
        crate::cosim::simulate(&compiled.circuit, compiled.scheduled(), &groups, &params)
    }
}

/// The distinct broadcast bases used by the sequence searches; a small
/// closed set so batched evaluations can key sequence databases and
/// length distributions on it (`crate::engine` memoizes both per kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MinBasisKind {
    /// The ideal minimal basis {Ry(π/2), T} of §IV-A2 (BS = 2, and the
    /// per-qubit universal set of `SFQ_MIMD_decomp`).
    IdealRyT,
    /// The richer 4-gate basis {Ry(π/2), T, X, S} used for `BS ≥ 4`.
    Rich4,
}

impl MinBasisKind {
    /// The basis kind a design's sequence search uses.
    pub fn for_design(design: ControllerDesign) -> MinBasisKind {
        match design {
            ControllerDesign::DigiqMin { bs } if bs >= 4 => MinBasisKind::Rich4,
            _ => MinBasisKind::IdealRyT,
        }
    }

    /// Materializes the basis operations.
    pub fn basis(self) -> MinBasis {
        match self {
            MinBasisKind::IdealRyT => MinBasis::ideal_ry_t(),
            MinBasisKind::Rich4 => MinBasis::new(vec![
                qsim::gates::ry(std::f64::consts::FRAC_PI_2),
                qsim::gates::t(),
                qsim::gates::x(),
                qsim::gates::s(),
            ]),
        }
    }

    /// Meet-in-the-middle half depth: a smaller alphabet needs a deeper
    /// half-database for the same coverage.
    pub fn half_depth(self) -> usize {
        match self {
            MinBasisKind::IdealRyT => 11,
            MinBasisKind::Rich4 => 7,
        }
    }
}

/// Derives an empirical DigiQ_min sequence-length distribution by running
/// the real meet-in-the-middle search over a stratified target sample on
/// the ideal basis for the design's `BS`.
pub fn measured_min_lengths(design: ControllerDesign) -> Vec<usize> {
    let kind = MinBasisKind::for_design(design);
    let basis = kind.basis();
    let db = SequenceDb::build(&basis, kind.half_depth());
    measured_min_lengths_with_db(&basis, &db)
}

/// The measurement step of [`measured_min_lengths`], over an
/// already-built (possibly cached and shared) sequence database.
pub fn measured_min_lengths_with_db(basis: &MinBasis, db: &SequenceDb) -> Vec<usize> {
    let targets = crate::error_model::target_sample(24, 0x515E_0001);
    // Paper procedure (§VI-B): "we decompose single-qubit gates until the
    // approximation error falls below 1e-4, up to a maximum depth of 28".
    // Gates whose best sequence misses the target are charged the full
    // depth.
    let mut lengths: Vec<usize> = targets
        .iter()
        .map(|t| {
            let dec = decompose_min(t, basis, db, 1e-4);
            if dec.error > 1e-4 {
                28
            } else {
                dec.cycles().max(1)
            }
        })
        .collect();
    lengths.sort_unstable();
    lengths
}

/// Runs the full Fig 9 matrix: every Table IV benchmark × the paper's
/// five plotted configurations, returning `(design, benchmark, ratio)`
/// rows.
pub fn fig9_sweep(model: &CostModel) -> Vec<(String, String, f64)> {
    let designs = [
        ControllerDesign::DigiqMin { bs: 2 },
        ControllerDesign::DigiqMin { bs: 4 },
        ControllerDesign::DigiqOpt { bs: 4 },
        ControllerDesign::DigiqOpt { bs: 8 },
        ControllerDesign::DigiqOpt { bs: 16 },
    ];
    let mut rows = Vec::new();
    for design in designs {
        let system = DigiqSystem::build(design, 2, model);
        for bench in qcircuit::bench::ALL_BENCHMARKS {
            let report = system.evaluate_benchmark(bench);
            rows.push((
                design.to_string(),
                bench.name().to_string(),
                report.normalized_time,
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_min_lengths_are_plausible() {
        let l2 = measured_min_lengths(ControllerDesign::DigiqMin { bs: 2 });
        assert!(!l2.is_empty());
        let med2 = l2[l2.len() / 2];
        assert!(
            (6..=28).contains(&med2),
            "BS=2 median depth {med2} out of range"
        );
        // BS=4's richer basis shortens sequences (the paper: "increasing
        // BS from 2 to 4 reduces the depth … by roughly half").
        let l4 = measured_min_lengths(ControllerDesign::DigiqMin { bs: 4 });
        let med4 = l4[l4.len() / 2];
        // Richer basis never lengthens sequences; both can saturate at
        // the 28-depth cap for Haar-random targets.
        assert!(med4 <= med2, "BS=4 median {med4} > BS=2 median {med2}");
    }

    #[test]
    fn build_for_engine_shares_the_engine_store() {
        let engine = crate::engine::EvalEngine::new(CostModel::default());
        let design = ControllerDesign::DigiqMin { bs: 2 };
        let _ = DigiqSystem::build_for_engine(&engine, design, 2, PipelineConfig::default());
        let _ = DigiqSystem::build_for_engine(&engine, design, 2, PipelineConfig::default());
        // Both systems fetched through the engine's store: the sequence
        // database and hardware were each built exactly once.
        let stats = engine.store_stats();
        for ns_name in [ns::SEQ_DB, ns::HARDWARE] {
            let s = stats
                .get(ns_name)
                .unwrap_or_else(|| panic!("namespace `{ns_name}` populated"));
            assert_eq!(s.builds, 1, "{ns_name} built more than once");
            assert!(s.hits >= 1, "{ns_name} second build missed the store");
        }
    }

    #[test]
    fn small_circuit_pipeline_runs() {
        let system = DigiqSystem::build(
            ControllerDesign::DigiqOpt { bs: 8 },
            2,
            &CostModel::default(),
        );
        let mut c = Circuit::new(16);
        for q in 0..16 {
            c.h(q);
        }
        for q in (0..15).step_by(2) {
            c.cz(q, q + 1);
        }
        let report = system.evaluate_circuit("smoke", &c);
        assert!(report.normalized_time >= 1.0);
        assert!(report.exec.total_ns > 0.0);
        assert_eq!(report.logical_gates, 16 + 8);
    }

    #[test]
    fn opt_bs16_beats_bs4_on_parallel_workload() {
        let model = CostModel::default();
        let sys4 = DigiqSystem::build(ControllerDesign::DigiqOpt { bs: 4 }, 2, &model);
        let sys16 = DigiqSystem::build(ControllerDesign::DigiqOpt { bs: 16 }, 2, &model);
        let c = qcircuit::bench::qgan(64, 2, 7);
        let r4 = sys4.evaluate_circuit("qgan64", &c);
        let r16 = sys16.evaluate_circuit("qgan64", &c);
        assert!(
            r16.normalized_time <= r4.normalized_time,
            "BS=16 {:.2} should beat BS=4 {:.2}",
            r16.normalized_time,
            r4.normalized_time
        );
    }

    #[test]
    fn cosimulation_matches_evaluation_through_the_facade() {
        let system = DigiqSystem::build(
            ControllerDesign::DigiqOpt { bs: 8 },
            2,
            &CostModel::default(),
        );
        let mut c = Circuit::new(16);
        for q in 0..16 {
            c.ry(q, 0.2 + 0.03 * q as f64);
        }
        c.cz(0, 1);
        let analytic = system.evaluate_circuit("facade", &c);
        let cosim = system.cosimulate_circuit(&c, false);
        let d = crate::cosim::diff_analytic(&cosim, &analytic.exec);
        assert!(d.is_exact(1e-9), "{d:?}");
        assert!(cosim.trace.is_empty());
        assert!(!system.cosimulate_circuit(&c, true).trace.is_empty());
    }

    #[test]
    fn build_shared_reuses_store_artifacts_across_systems_and_engines() {
        use crate::engine::EvalEngine;
        use std::sync::Arc;

        let model = CostModel::default();
        let store = Arc::new(ArtifactStore::in_memory());
        let design = ControllerDesign::DigiqMin { bs: 2 };
        let a = DigiqSystem::build_shared(design, 2, &model, PipelineConfig::default(), &store);
        let _b = DigiqSystem::build_shared(design, 2, &model, PipelineConfig::default(), &store);
        // Hardware, the sequence database and the length distribution
        // each built once; the second system hit all three.
        for namespace in [ns::HARDWARE, ns::SEQ_DB, ns::MIN_LENGTHS] {
            let s = store.namespace_stats(namespace);
            assert_eq!((s.builds, s.hits), (1, 1), "{namespace}");
        }
        // An engine over the same store reuses them too (same keys).
        let engine = EvalEngine::with_store(model, Arc::clone(&store));
        assert_eq!(store.namespace_stats(ns::MIN_LENGTHS).builds, 1);
        let lengths = engine.min_lengths(design).expect("decomposing design");
        assert_eq!(store.namespace_stats(ns::MIN_LENGTHS).builds, 1, "reused");
        assert!(!lengths.is_empty());
        let hw = engine.hardware(design, 2).expect("buildable design");
        assert_eq!(store.namespace_stats(ns::HARDWARE).builds, 1, "reused");
        assert_eq!(
            hw.report.power_w,
            a.hardware.as_ref().unwrap().report.power_w
        );
    }

    #[test]
    fn impossible_mimd_is_the_unit_baseline() {
        let system = DigiqSystem::build(ControllerDesign::ImpossibleMimd, 1, &CostModel::default());
        assert!(system.hardware.is_none());
        let mut c = Circuit::new(4);
        c.h(0);
        c.cz(0, 1);
        let r = system.evaluate_circuit("unit", &c);
        assert!((r.normalized_time - 1.0).abs() < 1e-12);
    }
}
