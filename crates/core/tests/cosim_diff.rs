//! Differential validation: the cycle-accurate co-simulator against the
//! analytic execution model, on the same compiled artifacts and hash
//! draws.
//!
//! The contract (see `digiq_core::cosim`):
//!
//! * **MIMD baselines and DigiQ_min** — integer cycle counts equal the
//!   analytic model *exactly* (the co-simulator's per-qubit timelines are
//!   the same machine the closed form describes, run in integer ticks);
//! * **DigiQ_opt** — totals match under identical hash draws, and the
//!   serialization cycles are attributed to the same schedule slots the
//!   analytic per-slot cost assigns them to;
//! * the engine's co-simulation mode is byte-identical for any worker
//!   count and unchanged by warm caches.

use digiq_core::cosim::{diff_analytic, simulate, CosimParams, CosimReport};
use digiq_core::delay_model::DelayModel;
use digiq_core::design::{ControllerDesign, SystemConfig};
use digiq_core::engine::{CosimSweepReport, EvalEngine, SweepSpec};
use digiq_core::exec::{checkerboard_groups, execute, opt_slot_cost, ExecParams};
use qcircuit::bench::Benchmark;
use qcircuit::ir::Circuit;
use qcircuit::lower::lower_to_cz;
use qcircuit::mapping::{route, Layout, RouterConfig};
use qcircuit::schedule::{schedule_crosstalk_aware, Slot};
use qcircuit::topology::Grid;
use sfq_hw::cost::CostModel;
use sfq_hw::json::ToJson;

/// f64-rounding tolerance between integer-tick and f64-ns totals.
const TOL: f64 = 1e-9;

/// Compiles a benchmark the way the engine does: lower → route (snake) →
/// lower SWAPs → crosstalk-aware schedule.
fn compile(bench: Benchmark, grid: &Grid) -> (Circuit, Vec<Slot>) {
    let circuit = bench.scaled(grid.n_qubits(), 0xD161_5EED);
    let lowered = lower_to_cz(&circuit);
    let routed = route(
        &lowered,
        grid,
        &Layout::snake(circuit.n_qubits(), grid),
        &RouterConfig::default(),
    );
    let physical = lower_to_cz(&routed.circuit);
    let slots = schedule_crosstalk_aware(&physical, grid);
    (physical, slots)
}

fn params_for(design: ControllerDesign, n_qubits: usize) -> ExecParams {
    let mut params = ExecParams::new(SystemConfig::paper_default(design, 2));
    params.config.n_qubits = n_qubits;
    params
}

fn run_both(
    design: ControllerDesign,
    physical: &Circuit,
    slots: &[Slot],
    grid: &Grid,
) -> (CosimReport, digiq_core::exec::ExecReport) {
    let groups = checkerboard_groups(grid.cols(), physical.n_qubits(), 2);
    let params = params_for(design, physical.n_qubits());
    let cosim = simulate(physical, slots, &groups, &CosimParams::new(params.clone()));
    let analytic = execute(physical, slots, &groups, &params);
    (cosim, analytic)
}

#[test]
fn mimd_and_min_designs_match_exactly_on_small_benchmarks() {
    let grid = Grid::new(6, 6);
    for bench in [Benchmark::Bv, Benchmark::Qgan, Benchmark::Ising] {
        let (physical, slots) = compile(bench, &grid);
        for design in [
            ControllerDesign::ImpossibleMimd,
            ControllerDesign::SfqMimdNaive,
            ControllerDesign::SfqMimdDecomp,
            ControllerDesign::DigiqMin { bs: 2 },
            ControllerDesign::DigiqMin { bs: 4 },
        ] {
            let (cosim, analytic) = run_both(design, &physical, &slots, &grid);
            let d = diff_analytic(&cosim, &analytic);
            assert!(d.is_exact(TOL), "{design} on {}: {d:?}", bench.name());
            // These designs never serialize, and every counter agrees.
            assert_eq!(cosim.serialization_cycles, 0);
            assert_eq!(cosim.oneq_cycles, analytic.oneq_cycles);
            assert_eq!(cosim.slots, analytic.slots);
            assert_eq!(cosim.cz_ns, analytic.cz_ns);
        }
    }
}

#[test]
fn opt_totals_match_under_identical_draws() {
    let grid = Grid::new(6, 6);
    for bench in [Benchmark::Bv, Benchmark::Qgan, Benchmark::Ising] {
        let (physical, slots) = compile(bench, &grid);
        for bs in [2usize, 4, 8, 16] {
            let design = ControllerDesign::DigiqOpt { bs };
            let (cosim, analytic) = run_both(design, &physical, &slots, &grid);
            let d = diff_analytic(&cosim, &analytic);
            assert!(d.is_exact(TOL), "{design} on {}: {d:?}", bench.name());
            assert_eq!(cosim.oneq_cycles, analytic.oneq_cycles);
            assert_eq!(cosim.serialization_cycles, analytic.serialization_cycles);
        }
    }
}

#[test]
fn opt_serialization_is_attributed_to_the_same_slots() {
    let grid = Grid::new(6, 6);
    let (physical, slots) = compile(Benchmark::Qgan, &grid);
    let groups = checkerboard_groups(grid.cols(), physical.n_qubits(), 2);
    let design = ControllerDesign::DigiqOpt { bs: 2 }; // narrow BS → contention
    let params = params_for(design, physical.n_qubits());
    let cosim = simulate(
        &physical,
        &slots,
        &groups,
        &CosimParams::new(params.clone()),
    );
    assert!(
        cosim.serialization_cycles > 0,
        "BS=2 must serialize this workload"
    );

    // Recompute the analytic per-slot cost through the shared delay model
    // and demand that the co-simulator charged contention to exactly the
    // same slots, cycle for cycle.
    let model = DelayModel::new(&params);
    let mut attributed = 0u64;
    for (si, slot) in slots.iter().enumerate() {
        let cost = opt_slot_cost(&physical, slot, &groups, &model, 2);
        let cosim_cycles = cosim
            .slot_serialization
            .iter()
            .find(|s| s.slot == si)
            .map(|s| s.cycles)
            .unwrap_or(0);
        assert_eq!(
            cosim_cycles, cost.serialization_cycles,
            "slot {si}: cosim attributed {cosim_cycles}, analytic charges {}",
            cost.serialization_cycles
        );
        attributed += cosim_cycles;
    }
    assert_eq!(attributed, cosim.serialization_cycles);
    // The sparse list only carries contended slots.
    assert!(cosim.slot_serialization.iter().all(|s| s.cycles > 0));
}

#[test]
fn engine_cosim_mode_is_deterministic_across_workers_and_cache_state() {
    let spec = SweepSpec::small_grid(
        vec![
            ControllerDesign::SfqMimdNaive.into(),
            ControllerDesign::DigiqOpt { bs: 4 }.into(),
        ],
        &[Benchmark::Bv, Benchmark::Ising],
        4,
        4,
    )
    .with_seeds(vec![0, 1]);

    let engine = EvalEngine::new(CostModel::default());
    let cold = engine.run_cosim(&spec, 1);
    let (hits_after_cold, misses_after_cold) = engine.cosim_cache_stats();
    assert_eq!(misses_after_cold, 8, "one simulation per job");
    assert_eq!(hits_after_cold, 0);

    // Warm engine, more workers: byte-identical serialization.
    let warm = engine.run_cosim(&spec, 3);
    assert_eq!(cold, warm, "cache hits must not change results");
    let (hits_after_warm, misses_after_warm) = engine.cosim_cache_stats();
    assert_eq!(misses_after_warm, 8, "warm run builds nothing");
    assert_eq!(hits_after_warm, 8);

    // Fresh engine, different worker count: byte-identical too.
    let fresh = EvalEngine::new(CostModel::default()).run_cosim(&spec, 4);
    assert_eq!(cold.to_json_string(), fresh.to_json_string());

    // Every job in the sweep validates differentially.
    assert!(cold.all_exact(TOL));
    assert_eq!(cold.jobs.len(), 8);
}

#[test]
fn cosim_sweep_report_round_trips_and_rejects_malformed_input() {
    let spec = SweepSpec::small_grid(
        vec![ControllerDesign::DigiqOpt { bs: 8 }.into()],
        &[Benchmark::Bv],
        4,
        4,
    );
    let report = EvalEngine::new(CostModel::default()).run_cosim(&spec, 2);
    let text = report.to_json_string();
    assert_eq!(CosimSweepReport::parse(&text), Ok(report.clone()));

    assert!(CosimSweepReport::parse("{}").is_err());
    assert!(CosimSweepReport::parse("not json").is_err());
    // Structurally valid JSON with a mistyped jobs field is rejected.
    assert!(CosimSweepReport::parse(r#"{"grid_rows":4,"grid_cols":4,"jobs":3}"#).is_err());
}

#[test]
fn seed_changes_move_both_engines_together() {
    // Different drift seeds re-draw the DigiQ_min decomposition depths
    // (DigiQ_opt's delay classes are 64-bit hashes, so their *distinct
    // counts* are seed-invariant); the two engines must stay locked to
    // each other at every seed even as the totals move.
    let grid = Grid::new(4, 4);
    let (physical, slots) = compile(Benchmark::Qgan, &grid);
    let groups = checkerboard_groups(grid.cols(), physical.n_qubits(), 2);
    let mut totals = Vec::new();
    for seed in [1u64, 2, 3] {
        let mut params = params_for(ControllerDesign::DigiqMin { bs: 2 }, physical.n_qubits());
        params.seed = seed;
        let cosim = simulate(
            &physical,
            &slots,
            &groups,
            &CosimParams::new(params.clone()),
        );
        let analytic = execute(&physical, &slots, &groups, &params);
        assert!(
            diff_analytic(&cosim, &analytic).is_exact(TOL),
            "seed {seed}"
        );
        totals.push(cosim.total_ticks);
    }
    assert!(
        totals.windows(2).any(|w| w[0] != w[1]),
        "seeds should perturb the depth draws: {totals:?}"
    );
}

// ---- negative paths: the executor/co-simulator lowered-circuit guard ----

fn unlowered() -> Circuit {
    let mut c = Circuit::new(4);
    c.h(0);
    c.cx(0, 1);
    c
}

#[test]
#[should_panic(expected = "executor requires a lowered circuit")]
fn analytic_timeline_branch_rejects_unlowered_circuits() {
    let c = unlowered();
    let params = params_for(ControllerDesign::SfqMimdNaive, 4);
    // A fake schedule referencing the raw gates.
    let slots: Vec<Slot> = vec![vec![0, 1]];
    let _ = execute(&c, &slots, &[0, 1, 0, 1], &params);
}

#[test]
#[should_panic(expected = "executor requires a lowered circuit")]
fn analytic_opt_branch_rejects_unlowered_circuits() {
    let c = unlowered();
    let params = params_for(ControllerDesign::DigiqOpt { bs: 4 }, 4);
    let slots: Vec<Slot> = vec![vec![0, 1]];
    let _ = execute(&c, &slots, &[0, 1, 0, 1], &params);
}

#[test]
#[should_panic(expected = "co-simulator requires a lowered circuit")]
fn cosim_rejects_unlowered_circuits() {
    let c = unlowered();
    let params = CosimParams::new(params_for(ControllerDesign::DigiqOpt { bs: 4 }, 4));
    let slots: Vec<Slot> = vec![vec![0, 1]];
    let _ = simulate(&c, &slots, &[0, 1, 0, 1], &params);
}
