//! Stage-granular compile caching and strategy plumbing through the
//! evaluation engine: per-pass hit/miss accounting (the Fig 9 matrix
//! reuses design-independent stages), prefix sharing across pipeline
//! configurations, worker-count determinism of the per-pass counters,
//! serialization round-trips, and end-to-end validity of the alternative
//! routing/scheduling strategies in both evaluation modes.

use digiq_core::design::ControllerDesign;
use digiq_core::engine::{EvalEngine, PassCacheStats, SweepSpec};
use qcircuit::bench::Benchmark;
use qcircuit::pipeline::{PipelineConfig, RouteStrategy, ScheduleStrategy};
use sfq_hw::cost::CostModel;
use sfq_hw::json::{Json, ToJson};

fn fig9_style_spec() -> SweepSpec {
    SweepSpec::small_grid(
        SweepSpec::fig9_designs(),
        &[Benchmark::Bv, Benchmark::Qgan, Benchmark::Ising],
        6,
        6,
    )
}

/// The acceptance contract of the refactor: across a Fig 9-style design
/// matrix, the design-independent stages (lowered/routed circuits) build
/// once per benchmark and every other design hits the per-pass caches.
#[test]
fn fig9_matrix_reuses_design_independent_stages() {
    let engine = EvalEngine::new(CostModel::default());
    let spec = fig9_style_spec();
    let report = engine.run(&spec, 2);
    assert_eq!(report.jobs.len(), 5 * 3);

    let stats = engine.pass_cache_stats();
    assert_eq!(
        stats
            .passes
            .iter()
            .map(|p| p.pass.as_str())
            .collect::<Vec<_>>(),
        ["lower", "lower_swaps", "route", "schedule"],
        "label-sorted stage accounting"
    );
    for p in &stats.passes {
        assert_eq!(p.misses, 3, "one build per benchmark for `{}`", p.pass);
        assert_eq!(p.hits, 12, "four designs reuse each stage of `{}`", p.pass);
    }
    // Final-stage accounting is what the report serializes.
    assert_eq!(report.cache.compile_misses, 3);
    assert_eq!(report.cache.compile_hits, 12);
    // Routing produced SWAPs and scheduling produced slots, visible in
    // the aggregated build metrics.
    assert!(stats.get("route").unwrap().swaps_added > 0);
    assert!(stats.get("schedule").unwrap().slots_out > 0);
    assert!(stats.get("lower").unwrap().gates_out >= stats.get("lower").unwrap().gates_in);
}

/// Pipelines differing only in the scheduler share every prefix stage:
/// re-running the same sweep under ASAP adds zero lower/route builds.
#[test]
fn scheduler_change_shares_lower_and_route_stages() {
    let engine = EvalEngine::new(CostModel::default());
    let spec = SweepSpec::small_grid(
        vec![ControllerDesign::DigiqOpt { bs: 8 }.into()],
        &[Benchmark::Bv, Benchmark::Ising],
        4,
        4,
    );
    engine.run(&spec, 1);
    let before = engine.pass_cache_stats();

    let asap = spec
        .clone()
        .with_pipeline(PipelineConfig::default().with_scheduler(ScheduleStrategy::Asap));
    engine.run(&asap, 1);
    let after = engine.pass_cache_stats();

    for pass in ["lower", "route", "lower_swaps"] {
        assert_eq!(
            after.get(pass).unwrap().misses,
            before.get(pass).unwrap().misses,
            "`{pass}` must not rebuild under a different scheduler"
        );
        assert!(after.get(pass).unwrap().hits > before.get(pass).unwrap().hits);
    }
    // The scheduler itself re-runs once per benchmark.
    assert_eq!(
        after.get("schedule").unwrap().misses,
        before.get("schedule").unwrap().misses + 2
    );

    // A router change, by contrast, only shares the first lowering.
    let lookahead = spec.with_pipeline(
        PipelineConfig::default().with_router(RouteStrategy::Lookahead { window: 16 }),
    );
    engine.run(&lookahead, 1);
    let third = engine.pass_cache_stats();
    assert_eq!(
        third.get("lower").unwrap().misses,
        after.get("lower").unwrap().misses
    );
    assert_eq!(
        third.get("route").unwrap().misses,
        after.get("route").unwrap().misses + 2
    );
}

/// Per-pass hit/miss totals are part of the determinism contract: any
/// worker count produces the same accounting on a fresh engine.
#[test]
fn pass_counters_are_worker_count_invariant() {
    let spec = fig9_style_spec();
    let counts = |workers: usize| {
        let engine = EvalEngine::new(CostModel::default());
        let report = engine.run(&spec, workers);
        let stats = engine.pass_cache_stats();
        (
            report.to_json_string(),
            stats
                .passes
                .iter()
                .map(|p| (p.pass.clone(), p.hits, p.misses))
                .collect::<Vec<_>>(),
        )
    };
    let (report1, stats1) = counts(1);
    for workers in [2, 5] {
        let (report_n, stats_n) = counts(workers);
        assert_eq!(report1, report_n, "report must not depend on workers");
        assert_eq!(stats1, stats_n, "pass counters must not depend on workers");
    }
}

#[test]
fn pass_cache_stats_roundtrip_through_json() {
    let engine = EvalEngine::new(CostModel::default());
    engine.run(&fig9_style_spec(), 2);
    let stats = engine.pass_cache_stats();
    assert!(!stats.passes.is_empty());
    let parsed = PassCacheStats::parse(&stats.to_json_string()).unwrap();
    assert_eq!(parsed, stats);
    assert!(PassCacheStats::parse("{}").is_err());
    assert!(PassCacheStats::parse("{\"passes\":[{}]}").is_err());
}

/// `sweep --json` appends the per-pass accounting as an extra top-level
/// field; the plain report reader must keep parsing such documents.
#[test]
fn sweep_report_parse_ignores_appended_pass_stats() {
    use digiq_core::engine::SweepReport;
    let engine = EvalEngine::new(CostModel::default());
    let spec = SweepSpec::small_grid(
        vec![ControllerDesign::DigiqOpt { bs: 8 }.into()],
        &[Benchmark::Bv],
        4,
        4,
    );
    let report = engine.run(&spec, 1);
    let mut j = report.to_json();
    if let Json::Obj(fields) = &mut j {
        fields.push((
            "pass_cache".to_string(),
            engine.pass_cache_stats().to_json(),
        ));
    } else {
        panic!("sweep reports serialize as objects");
    }
    assert_eq!(SweepReport::parse(&j.render()), Ok(report));
}

/// Both alternative strategies produce valid, executable schedules end to
/// end, and the analytic ↔ cycle-accurate lockstep holds for every
/// pipeline configuration (the two engines consume the identical compiled
/// artifact).
#[test]
fn alternative_strategies_evaluate_and_cosimulate_exactly() {
    for cfg in [
        PipelineConfig::default().with_scheduler(ScheduleStrategy::Asap),
        PipelineConfig::default().with_router(RouteStrategy::Lookahead { window: 16 }),
        PipelineConfig::default()
            .with_router(RouteStrategy::Lookahead { window: 4 })
            .with_scheduler(ScheduleStrategy::Asap),
    ] {
        let engine = EvalEngine::new(CostModel::default());
        let spec = SweepSpec::small_grid(
            vec![
                ControllerDesign::ImpossibleMimd.into(),
                ControllerDesign::DigiqOpt { bs: 8 }.into(),
            ],
            &[Benchmark::Bv, Benchmark::Ising],
            4,
            4,
        )
        .with_pipeline(cfg);

        let report = engine.run(&spec, 2);
        for job in &report.jobs {
            assert!(job.report.normalized_time >= 1.0, "{cfg:?}");
            assert!(job.report.exec.total_ns > 0.0);
        }

        let cosim = engine.run_cosim(&spec, 2);
        assert!(cosim.all_exact(1e-9), "{cfg:?}: {:?}", cosim.worst_diff());
    }
}

/// The ASAP scheduler genuinely changes the workload shape: fewer slots
/// than the crosstalk-aware schedule on an interference-heavy benchmark.
#[test]
fn asap_schedules_fewer_slots_than_crosstalk_aware() {
    let spec = SweepSpec::small_grid(
        vec![ControllerDesign::DigiqOpt { bs: 8 }.into()],
        &[Benchmark::Ising],
        4,
        4,
    );
    let aware = EvalEngine::new(CostModel::default()).run(&spec, 1);
    let asap = EvalEngine::new(CostModel::default()).run(
        &spec.with_pipeline(PipelineConfig::default().with_scheduler(ScheduleStrategy::Asap)),
        1,
    );
    assert!(
        asap.jobs[0].report.slots < aware.jobs[0].report.slots,
        "asap {} vs aware {}",
        asap.jobs[0].report.slots,
        aware.jobs[0].report.slots
    );
}

/// A warm engine re-running the same spec rebuilds nothing at any stage.
#[test]
fn warm_engine_has_zero_stage_misses_on_rerun() {
    let engine = EvalEngine::new(CostModel::default());
    let spec = fig9_style_spec();
    engine.run(&spec, 2);
    let before = engine.pass_cache_stats();
    engine.run(&spec, 3);
    let after = engine.pass_cache_stats();
    for (b, a) in before.passes.iter().zip(&after.passes) {
        assert_eq!(a.misses, b.misses, "warm `{}` must not rebuild", a.pass);
        assert!(a.hits > b.hits);
    }
}
