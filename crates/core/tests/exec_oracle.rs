//! Cross-design invariants of the Fig 9 execution model, checked through
//! the evaluation engine on a small grid:
//!
//! * the Impossible MIMD reference lower-bounds every real design;
//! * DigiQ_opt execution time is monotonically non-increasing in `BS`
//!   (more broadcast delay slots never serialize more);
//! * the baseline's normalized time is exactly 1.0.

use digiq_core::design::ControllerDesign;
use digiq_core::engine::{EvalEngine, SweepReport, SweepSpec};
use qcircuit::bench::Benchmark;
use sfq_hw::cost::CostModel;
use std::sync::OnceLock;

const BENCHES: [Benchmark; 3] = [Benchmark::Qgan, Benchmark::Ising, Benchmark::Bv];

/// One shared sweep over every design the oracles inspect (the engine
/// cache makes the marginal cost of extra designs small).
fn sweep() -> &'static SweepReport {
    static REPORT: OnceLock<SweepReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let mut designs = vec![ControllerDesign::ImpossibleMimd.into()];
        designs.extend(SweepSpec::table_one_designs());
        for bs in [2usize, 4, 16] {
            designs.push(ControllerDesign::DigiqOpt { bs }.into());
        }
        let spec = SweepSpec::small_grid(designs, &BENCHES, 6, 6).with_seeds(vec![5]);
        EvalEngine::new(CostModel::default()).run(&spec, 2)
    })
}

fn total_ns(design: ControllerDesign, bench: &str) -> f64 {
    sweep()
        .jobs
        .iter()
        .find(|j| j.design == design && j.benchmark == bench)
        .unwrap_or_else(|| panic!("missing job {design} / {bench}"))
        .report
        .exec
        .total_ns
}

#[test]
fn impossible_mimd_lower_bounds_every_real_design() {
    for bench in BENCHES {
        let floor = total_ns(ControllerDesign::ImpossibleMimd, bench.name());
        assert!(floor > 0.0);
        for design in [
            ControllerDesign::SfqMimdNaive,
            ControllerDesign::SfqMimdDecomp,
            ControllerDesign::DigiqMin { bs: 2 },
            ControllerDesign::DigiqOpt { bs: 2 },
            ControllerDesign::DigiqOpt { bs: 4 },
            ControllerDesign::DigiqOpt { bs: 8 },
            ControllerDesign::DigiqOpt { bs: 16 },
        ] {
            let t = total_ns(design, bench.name());
            assert!(
                t >= floor - 1e-9,
                "{design} on {}: {t} ns beats the impossible floor {floor} ns",
                bench.name()
            );
        }
    }
}

#[test]
fn digiq_opt_time_is_monotone_non_increasing_in_bs() {
    for bench in BENCHES {
        let times: Vec<f64> = [2usize, 4, 8, 16]
            .iter()
            .map(|&bs| total_ns(ControllerDesign::DigiqOpt { bs }, bench.name()))
            .collect();
        for w in times.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "{}: BS increase raised time {} -> {}",
                bench.name(),
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn baseline_normalized_time_is_exactly_one() {
    let baseline_jobs: Vec<_> = sweep()
        .jobs
        .iter()
        .filter(|j| j.design == ControllerDesign::ImpossibleMimd)
        .collect();
    assert_eq!(baseline_jobs.len(), BENCHES.len());
    for job in baseline_jobs {
        assert_eq!(
            job.report.normalized_time, 1.0,
            "{}: baseline must normalize to exactly 1.0",
            job.benchmark
        );
    }
    // Every real design sits at or above the baseline.
    for job in &sweep().jobs {
        assert!(
            job.report.normalized_time >= 1.0,
            "{} on {}: normalized {} < 1",
            job.design,
            job.benchmark,
            job.report.normalized_time
        );
    }
}

#[test]
fn decomposing_designs_pay_for_depth() {
    // DigiQ_min charges measured multi-cycle decompositions, so it must
    // sit strictly above the baseline on single-qubit-heavy workloads.
    let min2 = total_ns(ControllerDesign::DigiqMin { bs: 2 }, "QGAN");
    let floor = total_ns(ControllerDesign::ImpossibleMimd, "QGAN");
    assert!(
        min2 > 2.0 * floor,
        "DigiQ_min(BS=2) should pay clearly for decomposition: {min2} vs {floor}"
    );
}
