//! Round-trip coverage of the `SweepReport` shape through `sfq_hw::json`
//! — `parse(serialize(x)) == x` for both engine-produced and hand-built
//! reports — plus malformed-input rejection for the parser and the
//! structural reader.

use digiq_core::design::ControllerDesign;
use digiq_core::engine::{CacheStats, EvalEngine, JobRecord, SweepReport, SweepSpec};
use digiq_core::exec::ExecReport;
use digiq_core::system::BenchmarkReport;
use qcircuit::bench::Benchmark;
use sfq_hw::cost::CostModel;
use sfq_hw::json::{Json, ToJson};

fn engine_report() -> SweepReport {
    let spec = SweepSpec::small_grid(
        vec![
            ControllerDesign::ImpossibleMimd.into(),
            ControllerDesign::DigiqOpt { bs: 8 }.into(),
        ],
        &[Benchmark::Bv],
        4,
        4,
    )
    .with_seeds(vec![1, 2])
    .with_hardware();
    EvalEngine::new(CostModel::default()).run(&spec, 2)
}

fn hand_built_report() -> SweepReport {
    SweepReport {
        grid_rows: 2,
        grid_cols: 3,
        jobs: vec![JobRecord {
            design: ControllerDesign::DigiqMin { bs: 4 },
            groups: 2,
            benchmark: "Ising".to_string(),
            n_qubits: 6,
            seed: 42,
            power_w: Some(0.125),
            report: BenchmarkReport {
                benchmark: "Ising".to_string(),
                logical_gates: 17,
                swaps: 3,
                slots: 9,
                exec: ExecReport {
                    total_ns: 1234.5,
                    oneq_cycles: 88,
                    serialization_cycles: 7,
                    slots: 9,
                    cz_ns: 360.0,
                },
                normalized_time: 4.25,
            },
        }],
        cache: CacheStats {
            circuit_hits: 1,
            circuit_misses: 1,
            compile_hits: 1,
            compile_misses: 1,
            seq_db_misses: 1,
            ..CacheStats::default()
        },
    }
}

#[test]
fn engine_report_round_trips_compact_and_pretty() {
    let report = engine_report();
    // power_w exercises both Null (Impossible MIMD) and Some.
    assert!(report.jobs.iter().any(|j| j.power_w.is_none()));
    assert!(report.jobs.iter().any(|j| j.power_w.is_some()));

    let compact = report.to_json_string();
    assert_eq!(SweepReport::parse(&compact), Ok(report.clone()));

    let pretty = report.to_json().render_pretty(2);
    assert_eq!(SweepReport::parse(&pretty), Ok(report));
}

#[test]
fn hand_built_report_round_trips_every_field() {
    let report = hand_built_report();
    let parsed = SweepReport::parse(&report.to_json_string()).unwrap();
    assert_eq!(parsed, report);
    // Spot-check exact float and count survival.
    assert_eq!(parsed.jobs[0].power_w, Some(0.125));
    assert_eq!(parsed.jobs[0].report.exec.oneq_cycles, 88);
    assert_eq!(parsed.cache.seq_db_misses, 1);

    // An empty sweep is still a valid document.
    let empty = SweepReport {
        grid_rows: 0,
        grid_cols: 0,
        jobs: vec![],
        cache: CacheStats::default(),
    };
    assert_eq!(SweepReport::parse(&empty.to_json_string()), Ok(empty));
}

#[test]
fn component_readers_round_trip() {
    let report = hand_built_report();
    let job = &report.jobs[0];
    assert_eq!(JobRecord::from_json(&job.to_json()), Ok(job.clone()));
    assert_eq!(
        BenchmarkReport::from_json(&job.report.to_json()),
        Ok(job.report.clone())
    );
    assert_eq!(
        ExecReport::from_json(&job.report.exec.to_json()),
        Ok(job.report.exec.clone())
    );
    assert_eq!(
        CacheStats::from_json(&report.cache.to_json()),
        Ok(report.cache)
    );
}

#[test]
fn parser_rejects_malformed_syntax() {
    for text in [
        "",
        "{",
        "[1,]",
        "{\"grid_rows\":}",
        "{\"a\":1} extra",
        "\"unterminated",
        "nul",
        "{'single':1}",
    ] {
        assert!(
            SweepReport::parse(text).is_err(),
            "accepted malformed JSON: {text:?}"
        );
    }
}

#[test]
fn reader_rejects_structural_mismatches() {
    let good = hand_built_report().to_json();

    // Top level must be an object with every field present and typed.
    assert!(SweepReport::from_json(&Json::Arr(vec![])).is_err());
    let mutations: Vec<(&str, Json)> = vec![
        ("grid_rows", Json::Str("two".into())),
        ("grid_rows", Json::Num(-1.0)),
        ("grid_rows", Json::Num(1.5)),
        ("jobs", Json::Num(3.0)),
        ("cache", Json::Null),
    ];
    for (field, bad_value) in mutations {
        let mut pairs = match &good {
            Json::Obj(pairs) => pairs.clone(),
            _ => unreachable!(),
        };
        for (k, v) in &mut pairs {
            if k == field {
                *v = bad_value.clone();
            }
        }
        let err = SweepReport::from_json(&Json::Obj(pairs));
        assert!(err.is_err(), "accepted bad `{field}`");
    }
    // Missing field.
    let mut pairs = match &good {
        Json::Obj(pairs) => pairs.clone(),
        _ => unreachable!(),
    };
    pairs.retain(|(k, _)| k != "jobs");
    assert!(SweepReport::from_json(&Json::Obj(pairs)).is_err());

    // Bad nested job entries.
    let job = hand_built_report().jobs.remove(0);
    let mut j = match job.to_json() {
        Json::Obj(pairs) => pairs,
        _ => unreachable!(),
    };
    for (k, v) in &mut j {
        if k == "design" {
            *v = Json::Str("NotADesign".into());
        }
    }
    assert!(JobRecord::from_json(&Json::Obj(j)).is_err());
    assert!(ExecReport::from_json(&Json::obj([("total_ns", Json::Bool(true))])).is_err());
    assert!(ExecReport::from_json(&Json::obj([
        ("total_ns", Json::Num(1.0)),
        ("oneq_cycles", Json::Num(2.5)),
        ("serialization_cycles", Json::Num(0.0)),
        ("slots", Json::Num(1.0)),
        ("cz_ns", Json::Num(0.0)),
    ]))
    .is_err());
    assert!(CacheStats::from_json(&Json::obj([("circuit_hits", Json::Num(1.0))])).is_err());
}
