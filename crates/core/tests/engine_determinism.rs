//! Determinism guarantees of the batched evaluation engine: worker count
//! never changes the serialized report, and cache hits never change
//! results versus a cold run.

use digiq_core::design::ControllerDesign;
use digiq_core::engine::{BenchScale, BenchmarkSpec, EvalEngine, SweepReport, SweepSpec};
use qcircuit::bench::Benchmark;
use sfq_hw::cost::CostModel;
use sfq_hw::json::ToJson;

/// A sweep exercising every executor path (per-qubit-timeline designs,
/// the decomposing designs with their shared sequence database, the
/// SIMD delay-contention design, and the unbuildable baseline).
fn spec(seeds: Vec<u64>) -> SweepSpec {
    let mut designs = SweepSpec::table_one_designs();
    designs.push(ControllerDesign::ImpossibleMimd.into());
    SweepSpec::small_grid(designs, &[Benchmark::Bv, Benchmark::Qgan], 6, 6).with_seeds(seeds)
}

#[test]
fn one_worker_and_n_workers_serialize_byte_identically() {
    // Property-style: several spec seeds × several worker counts, each on
    // a fresh (cold) engine, all byte-identical to the 1-worker run.
    for base_seed in [0xD161_5EED_u64, 1, 0xFFFF_FFFF_0000_0001] {
        let mut s = spec(vec![3, 4]);
        s.base_seed = base_seed;
        let reference = EvalEngine::new(CostModel::default())
            .run(&s, 1)
            .to_json_string();
        for workers in [2, 4, 7] {
            let parallel = EvalEngine::new(CostModel::default())
                .run(&s, workers)
                .to_json_string();
            assert_eq!(
                reference, parallel,
                "seed {base_seed:#x}: {workers} workers diverged from 1 worker"
            );
        }
        // The serialized report survives a parse round-trip unchanged.
        let parsed = SweepReport::parse(&reference).expect("engine output parses");
        assert_eq!(parsed.to_json_string(), reference);
    }
}

#[test]
fn cache_hits_never_change_results_versus_a_cold_run() {
    let s = spec(vec![9]);
    let engine = EvalEngine::new(CostModel::default());
    let cold = engine.run(&s, 2);
    assert!(
        cold.cache.total_misses() > 0,
        "cold run must build artifacts"
    );
    // Same engine, everything cached — results identical, zero builds.
    for workers in [1, 3] {
        let warm = engine.run(&s, workers);
        assert_eq!(cold.jobs, warm.jobs, "warm {workers}-worker run diverged");
        assert_eq!(warm.cache.total_misses(), 0, "warm run rebuilt an artifact");
        assert!(warm.cache.total_hits() > 0);
    }
    // And a fresh engine (cold again) still agrees on the results.
    let cold2 = EvalEngine::new(CostModel::default()).run(&s, 4);
    assert_eq!(cold.jobs, cold2.jobs);
    assert_eq!(
        cold.cache, cold2.cache,
        "cache accounting must be deterministic"
    );
}

#[test]
fn seed_axis_changes_results_but_structure_is_stable() {
    // The derived per-job seeds really flow into the executor: drift
    // seeds re-draw DigiQ_min's per-gate decomposition depths, but the
    // shared compiled artifact (slots, swaps) is identical across seeds.
    let s = SweepSpec::small_grid(
        vec![ControllerDesign::DigiqMin { bs: 2 }.into()],
        &[Benchmark::Qgan],
        6,
        6,
    )
    .with_seeds(vec![0, 1, 2, 3]);
    let report = EvalEngine::new(CostModel::default()).run(&s, 2);
    assert_eq!(report.jobs.len(), 4);
    let slots0 = report.jobs[0].report.slots;
    assert!(report.jobs.iter().all(|j| j.report.slots == slots0));
    // total_ns is a max over per-qubit timelines and may saturate at the
    // deepest-possible qubit; the summed cycle count is the observable
    // that must move when seeds re-draw per-gate depths.
    let distinct: std::collections::HashSet<u64> = report
        .jobs
        .iter()
        .map(|j| j.report.exec.oneq_cycles)
        .collect();
    assert!(
        distinct.len() > 1,
        "drift seeds should re-draw DigiQ_min decomposition depths"
    );
}

#[test]
fn paper_and_small_scales_cache_independently() {
    let engine = EvalEngine::new(CostModel::default());
    let small = engine.benchmark_circuit(
        BenchmarkSpec {
            bench: Benchmark::Sqrt10,
            scale: BenchScale::Small { max_qubits: 36 },
        },
        7,
    );
    let paper = engine.benchmark_circuit(
        BenchmarkSpec {
            bench: Benchmark::Sqrt10,
            scale: BenchScale::Paper,
        },
        7,
    );
    assert_ne!(small.cache_key(), paper.cache_key());
    assert_eq!(engine.cache_stats().circuit_misses, 2);
    // Same key → same Arc, no rebuild.
    let again = engine.benchmark_circuit(
        BenchmarkSpec {
            bench: Benchmark::Sqrt10,
            scale: BenchScale::Small { max_qubits: 36 },
        },
        7,
    );
    assert!(std::sync::Arc::ptr_eq(&small, &again));
    assert_eq!(engine.cache_stats().circuit_misses, 2);
}
