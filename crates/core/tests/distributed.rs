//! In-process guarantees of the distributed sweep machinery: the claim
//! protocol admits exactly one winner per job, abandoned claims expire
//! and get reclaimed, concurrent workers never double-journal a job,
//! and a merge over any shard layout is byte-identical to the serial
//! run. (The cross-*process* versions of these checks — real killed
//! workers included — live in `crates/bench/tests/distributed.rs`,
//! where the `sweep` binary is available.)

use digiq_core::engine::{DistributedConfig, EvalEngine, SweepSpec};
use digiq_core::store::{ArtifactStore, JobClaims, SweepJournal};
use sfq_hw::cost::CostModel;
use sfq_hw::json::ToJson;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A unique temp directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "digiq-dist-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn worker_cfg(label: &str, offset: usize) -> DistributedConfig {
    let mut cfg = DistributedConfig::new(label);
    cfg.scan_offset = offset;
    cfg.poll = Duration::from_millis(5);
    cfg
}

#[test]
fn claim_race_admits_exactly_one_winner() {
    let dir = TempDir::new("claim-race");
    let ttl = Duration::from_secs(30);
    let n = 8;
    let wins: Vec<bool> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|w| {
                let dir = dir.path();
                s.spawn(move || {
                    let claims =
                        JobClaims::open(dir, 1, &format!("w{w}"), ttl).expect("open claims");
                    claims.try_claim(0)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        wins.iter().filter(|&&w| w).count(),
        1,
        "exactly one of {n} racing workers may win a claim: {wins:?}"
    );
}

#[test]
fn concurrent_workers_merge_byte_identical_to_serial_without_double_journaling() {
    let dir = TempDir::new("n4");
    let spec = SweepSpec::smoke();
    let serial = EvalEngine::new(CostModel::default())
        .run(&spec, 1)
        .to_json_string();

    let n = 4;
    let jobs = spec.job_count();
    std::thread::scope(|s| {
        for w in 0..n {
            let (dir, spec, serial) = (dir.path(), &spec, serial.as_str());
            s.spawn(move || {
                let engine = EvalEngine::new(CostModel::default());
                let cfg = worker_cfg(&format!("w{w}"), w * jobs / n);
                let report = engine
                    .run_distributed(spec, dir, &cfg, None)
                    .expect("worker IO")
                    .expect("no stop flag, so the worker runs to completion");
                // Every worker hands back the full merged report.
                assert_eq!(report.to_json_string(), serial);
            });
        }
    });

    let merged = EvalEngine::new(CostModel::default())
        .merge_distributed(&spec, dir.path())
        .expect("all jobs journaled");
    assert_eq!(merged.to_json_string(), serial);

    // The claim recheck after every win means racing workers never
    // journal the same job twice: across all shards, one record per job.
    let journal_dir = ArtifactStore::journal_dir(dir.path());
    let records = SweepJournal::load_all(&journal_dir, spec.stable_key());
    assert_eq!(
        records.len(),
        jobs,
        "each job must be journaled exactly once across all shards"
    );

    // And every claim was released on the way out.
    let claims_dir = JobClaims::claims_dir(dir.path(), spec.stable_key());
    let leftovers = std::fs::read_dir(&claims_dir)
        .map(|it| it.count())
        .unwrap_or(0);
    assert_eq!(leftovers, 0, "completed workers release their claims");
}

#[test]
fn abandoned_claim_expires_and_survivor_finishes_with_identical_bytes() {
    let dir = TempDir::new("expiry");
    let spec = SweepSpec::smoke();
    let serial = EvalEngine::new(CostModel::default())
        .run(&spec, 1)
        .to_json_string();

    // A "killed" worker: claims job 0 and never heartbeats or journals
    // (its heartbeat thread died with the process).
    let ttl = Duration::from_millis(120);
    let dead = JobClaims::open(dir.path(), spec.stable_key(), "dead", ttl).expect("open claims");
    assert!(dead.try_claim(0), "vacant claim goes to the first worker");

    // A survivor with the same TTL must wait out the expiry, steal the
    // abandoned job, and still produce the serial bytes.
    let engine = EvalEngine::new(CostModel::default());
    let mut cfg = worker_cfg("survivor", 0);
    cfg.claim_ttl = ttl;
    let report = engine
        .run_distributed(&spec, dir.path(), &cfg, None)
        .expect("worker IO")
        .expect("runs to completion");
    assert_eq!(report.to_json_string(), serial);
}

#[test]
fn merge_of_incomplete_sweep_reports_progress() {
    let dir = TempDir::new("incomplete");
    let spec = SweepSpec::smoke();
    let engine = EvalEngine::new(CostModel::default());
    let err = engine
        .merge_distributed(&spec, dir.path())
        .expect_err("nothing journaled yet");
    assert!(
        err.contains(&format!("0/{} jobs", spec.job_count())),
        "the error names progress: {err}"
    );
}
