//! The artifact store's cross-process guarantees: disk persistence with
//! corruption tolerance, warm-started sweeps that rebuild nothing and
//! serialize byte-identically, capacity-bounded stores whose evictions
//! never change results, honest cold-run cache accounting, and resumable
//! journaled sweeps that merge byte-identically with uninterrupted runs.

use digiq_core::design::ControllerDesign;
use digiq_core::engine::{EvalEngine, SweepSpec};
use digiq_core::store::{
    ns, Artifact, ArtifactStore, StoreConfig, SweepJournal, DISK_FORMAT_VERSION,
};
use qcircuit::bench::Benchmark;
use sfq_hw::cost::CostModel;
use sfq_hw::json::ToJson;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A unique temp directory removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(label: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "digiq-store-{label}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn disk_store(dir: &TempDir) -> ArtifactStore {
    ArtifactStore::with_config(StoreConfig {
        capacity: None,
        cache_dir: Some(dir.path().to_path_buf()),
    })
}

fn smoke_spec() -> SweepSpec {
    SweepSpec::small_grid(
        vec![
            ControllerDesign::SfqMimdNaive.into(),
            ControllerDesign::DigiqOpt { bs: 8 }.into(),
        ],
        &[Benchmark::Bv, Benchmark::Qgan],
        4,
        4,
    )
}

/// A sweep exercising every cache namespace: hardware synthesis, the
/// decomposing designs (sequence databases + length distributions), two
/// seeds, and a duplicate design point.
fn full_coverage_spec() -> SweepSpec {
    let mut designs = SweepSpec::table_one_designs();
    designs.push(ControllerDesign::ImpossibleMimd.into());
    designs.push(ControllerDesign::DigiqOpt { bs: 8 }.into()); // duplicate
    SweepSpec::small_grid(designs, &[Benchmark::Bv, Benchmark::Ising], 4, 4)
        .with_seeds(vec![3, 9])
        .with_hardware()
}

#[test]
fn artifacts_persist_across_store_instances() {
    let dir = TempDir::new("persist");
    let spec = smoke_spec();

    let cold = EvalEngine::with_store(CostModel::default(), Arc::new(disk_store(&dir)));
    let cold_report = cold.run(&spec, 2);
    let cold_stats = cold.store_stats();
    assert!(cold_stats.pass_builds() > 0, "cold run builds stages");
    assert_eq!(cold_stats.totals().2, 0, "nothing on disk yet");

    // A fresh engine over a fresh store on the same directory: every
    // persistent artifact loads from disk, zero pass builds, and the
    // serialized report — cache accounting included — is byte-identical.
    let warm = EvalEngine::with_store(CostModel::default(), Arc::new(disk_store(&dir)));
    let warm_report = warm.run(&spec, 2);
    assert_eq!(warm_report.to_json_string(), cold_report.to_json_string());
    let warm_stats = warm.store_stats();
    assert_eq!(warm_stats.pass_builds(), 0, "stages all hit the disk");
    assert_eq!(
        warm_stats.get(ns::BASELINE).unwrap().builds,
        0,
        "baselines hit the disk too"
    );
    assert!(warm_stats.totals().2 > 0, "disk hits recorded");

    // The co-simulation mode persists as well.
    let cold_cosim = cold.run_cosim(&spec, 2);
    let warm2 = EvalEngine::with_store(CostModel::default(), Arc::new(disk_store(&dir)));
    let warm_cosim = warm2.run_cosim(&spec, 1);
    assert_eq!(warm_cosim.to_json_string(), cold_cosim.to_json_string());
    assert_eq!(
        warm2.store_stats().get(ns::COSIM).unwrap().builds,
        0,
        "co-simulations loaded from disk"
    );
}

#[test]
fn corrupt_and_truncated_disk_files_are_rebuilt() {
    let dir = TempDir::new("corrupt");
    let spec = smoke_spec();
    EvalEngine::with_store(CostModel::default(), Arc::new(disk_store(&dir))).run(&spec, 1);

    // Vandalize every persisted stage file a different way.
    let stage_root = dir.path().join(DISK_FORMAT_VERSION).join("stage");
    let mut damaged = 0;
    for entry in walk(&stage_root) {
        match damaged % 3 {
            0 => std::fs::write(&entry, "{ not json").unwrap(),
            1 => std::fs::write(&entry, "{\"circuit\":null}").unwrap(),
            _ => std::fs::write(&entry, "").unwrap(),
        }
        damaged += 1;
    }
    assert!(damaged >= 8, "expected persisted stage files");

    let engine = EvalEngine::with_store(CostModel::default(), Arc::new(disk_store(&dir)));
    let report = engine.run(&spec, 2);
    let fresh = EvalEngine::new(CostModel::default()).run(&spec, 2);
    assert_eq!(
        report.to_json_string(),
        fresh.to_json_string(),
        "corrupt files must be rebuilt, not trusted"
    );
    let stats = engine.store_stats();
    assert_eq!(stats.pass_builds() as usize, damaged, "every file rebuilt");

    // The rebuilt files are valid again: one more engine warm-starts.
    let warm = EvalEngine::with_store(CostModel::default(), Arc::new(disk_store(&dir)));
    warm.run(&spec, 1);
    assert_eq!(warm.store_stats().pass_builds(), 0);
}

fn walk(root: &std::path::Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return files;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            files.extend(walk(&path));
        } else {
            files.push(path);
        }
    }
    files
}

#[test]
fn cold_cache_stats_match_live_accounting() {
    for spec in [smoke_spec(), full_coverage_spec()] {
        let engine = EvalEngine::new(CostModel::default());
        let live = engine.run(&spec, 2);
        assert_eq!(
            EvalEngine::cold_cache_stats(&spec),
            live.cache,
            "reconstructed accounting must match a live cold run"
        );
    }
}

#[test]
fn capped_store_keeps_reports_byte_identical_and_counts_evictions() {
    let spec = smoke_spec();
    let unbounded = EvalEngine::new(CostModel::default()).run(&spec, 2);

    // A store capped far below the working set (12 artifacts in the
    // smoke sweep) still produces the identical rows — evictions only
    // cost rebuilds — and the eviction counters are visible.
    for capacity in [1, 3] {
        let engine = EvalEngine::with_store_config(
            CostModel::default(),
            StoreConfig {
                capacity: Some(capacity),
                cache_dir: None,
            },
        );
        let capped = engine.run(&spec, 2);
        assert_eq!(capped.jobs, unbounded.jobs, "capacity {capacity}");
        let stats = engine.store_stats();
        assert!(engine.store().resident() <= capacity);
        let evictions = stats.totals().4;
        assert!(evictions > 0, "capacity {capacity} must evict");
        let rebuilds = stats.totals().3;
        assert!(
            rebuilds > unbounded.cache.total_misses(),
            "evictions cost rebuilds ({rebuilds})"
        );
    }
}

#[test]
fn journaled_sweep_resumes_byte_identically() {
    let spec = full_coverage_spec();
    let workers = 2;

    // Reference: an uninterrupted journaled run on a fresh dir.
    let dir_a = TempDir::new("journal-a");
    let engine_a = EvalEngine::with_store(CostModel::default(), Arc::new(disk_store(&dir_a)));
    let journal_a =
        SweepJournal::open(&ArtifactStore::journal_dir(dir_a.path()), spec.stable_key()).unwrap();
    let uninterrupted = engine_a
        .run_journaled(&spec, workers, &journal_a, true, None)
        .expect("uninterrupted run completes");

    // It also matches a plain (non-journaled) run: same rows, and the
    // journaled cache accounting is the deterministic cold accounting.
    let plain = EvalEngine::new(CostModel::default()).run(&spec, workers);
    assert_eq!(uninterrupted.to_json_string(), plain.to_json_string());

    // Interrupt after 3 jobs, then resume with fresh processes.
    let dir_b = TempDir::new("journal-b");
    let journal_dir = ArtifactStore::journal_dir(dir_b.path());
    {
        let engine = EvalEngine::with_store(CostModel::default(), Arc::new(disk_store(&dir_b)));
        let journal = SweepJournal::open(&journal_dir, spec.stable_key()).unwrap();
        assert!(
            engine
                .run_journaled(&spec, workers, &journal, true, Some(3))
                .is_none(),
            "interrupted run returns no report"
        );
        assert_eq!(journal.load().len(), 3, "three jobs journaled");
    }
    let engine = EvalEngine::with_store(CostModel::default(), Arc::new(disk_store(&dir_b)));
    let journal = SweepJournal::open(&journal_dir, spec.stable_key()).unwrap();
    let resumed = engine
        .run_journaled(&spec, workers, &journal, true, None)
        .expect("resumed run completes");
    assert_eq!(
        resumed.to_json_string(),
        uninterrupted.to_json_string(),
        "resumed sweep must be byte-identical to an uninterrupted one"
    );
    // The resumed run really skipped the journaled jobs.
    assert_eq!(
        engine
            .store_stats()
            .get(ns::CIRCUIT)
            .map_or(0, |n| n.hits + n.misses),
        (spec.job_count() - 3) as u64,
        "only the pending jobs re-ran"
    );
}

#[test]
fn journal_tolerates_corrupt_lines_and_foreign_specs() {
    let dir = TempDir::new("journal-corrupt");
    let spec = smoke_spec();
    let journal_dir = ArtifactStore::journal_dir(dir.path());
    let journal = SweepJournal::open(&journal_dir, spec.stable_key()).unwrap();

    // Simulate a crash-torn line plus assorted garbage.
    std::fs::write(
        journal.path(),
        "{\"index\":0,\"record\":{\"trunca\n{\"index\":9999,\"record\":{}}\n",
    )
    .unwrap();
    journal.append(1, &sfq_hw::json::Json::obj([("bogus", true.to_json())]));
    // The torn line is skipped, the out-of-range index is dropped by the
    // engine, and only the syntactically valid lines load.
    assert_eq!(journal.load().len(), 2, "torn line skipped");

    // A bogus record parses as JSON but not as a job record: the resumed
    // run re-runs that job instead of trusting it.
    let engine = EvalEngine::with_store(CostModel::default(), Arc::new(disk_store(&dir)));
    let report = engine
        .run_journaled(&spec, 1, &journal, true, None)
        .unwrap();
    let reference = EvalEngine::new(CostModel::default()).run(&spec, 1);
    assert_eq!(report.to_json_string(), reference.to_json_string());

    // A different spec gets a different journal file entirely.
    let other = full_coverage_spec();
    assert_ne!(other.stable_key(), spec.stable_key());
    let other_journal = SweepJournal::open(&journal_dir, other.stable_key()).unwrap();
    assert_ne!(other_journal.path(), journal.path());
    assert!(other_journal.load().is_empty());
}

#[test]
fn exec_and_cosim_artifacts_roundtrip_bit_exactly() {
    // The persistence contract of the report artifacts: decode(encode(x))
    // is exactly x, so warm-started reports serialize byte-identically.
    let spec = smoke_spec();
    let engine = EvalEngine::new(CostModel::default());
    let report = engine.run(&spec, 1);
    for job in &report.jobs {
        let exec = &job.report.exec;
        let decoded = digiq_core::exec::ExecReport::decode(&exec.encode()).unwrap();
        assert_eq!(&decoded, exec);
        assert_eq!(decoded.to_json_string(), exec.to_json_string());
    }
    let cosim = engine.run_cosim(&spec, 1);
    for job in &cosim.jobs {
        let decoded = digiq_core::cosim::CosimReport::decode(&job.cosim.encode()).unwrap();
        assert_eq!(&decoded, &job.cosim);
        assert_eq!(decoded.to_json_string(), job.cosim.to_json_string());
    }
}
