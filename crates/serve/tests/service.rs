//! End-to-end service tests: golden byte-identity over the wire,
//! request coalescing pinned through the store counters, admission
//! control, and drain → restart → resume byte-identity.

use digiq_core::engine::SweepSpec;
use digiq_core::store::{ArtifactStore, StoreConfig};
use digiq_serve::server::{NS_COSIM, NS_SWEEP};
use digiq_serve::{serve, Client, EvalOutcome, ServeConfig};
use std::path::PathBuf;
use std::sync::Barrier;

/// The committed golden for `sweep --smoke` / `cosim --smoke` stdout
/// (trailing newline comes from the CLI's println, not the report).
fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));
    text.strip_suffix('\n').unwrap_or(&text).to_string()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("digiq-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn expect_report(outcome: EvalOutcome) -> String {
    match outcome {
        EvalOutcome::Report(text) => text,
        other => panic!("expected a report, got {other:?}"),
    }
}

#[test]
fn sweep_responses_are_byte_identical_to_the_batch_cli_golden() {
    let handle = serve(ServeConfig::default()).unwrap();
    let spec = SweepSpec::smoke().with_seeds(vec![0]);
    let mut client = Client::connect(handle.addr()).unwrap();

    let cold = expect_report(client.sweep(&spec, 2).unwrap());
    assert_eq!(cold, golden("engine_smoke.json"));

    // The warm repeat — a store hit on a now-shared engine — must still
    // serialize the exact cold-run bytes.
    let warm = expect_report(client.sweep(&spec, 2).unwrap());
    assert_eq!(warm, cold);
    let stats = client.stats().unwrap();
    let ns = stats.get(NS_SWEEP).unwrap();
    assert_eq!((ns.builds, ns.hits), (1, 1));

    handle.drain();
    handle.join();
}

#[test]
fn warm_replay_is_steady_state() {
    // Warm requests replay a memoized artifact: pure frame round trips
    // with no evaluation. The regression this pins: Nagle + delayed ACK
    // on the small request/response frames stalled EVERY request after
    // a connection's first by ~80ms (two ~40ms delayed-ACK waits per
    // round trip), which skewed loadgen's warm percentiles to p99 ≈
    // 87ms over a sub-ms p50. With TCP_NODELAY and single-buffer frame
    // writes the stall is structurally gone, so even the *fastest* warm
    // replay on a loaded box sits far under the 40ms delayed-ACK floor.
    let handle = serve(ServeConfig::default()).unwrap();
    let spec = SweepSpec::smoke().with_seeds(vec![0]);
    let mut client = Client::connect(handle.addr()).unwrap();
    let cold = expect_report(client.sweep(&spec, 2).unwrap());

    let mut lats = Vec::new();
    for _ in 0..8 {
        let t = std::time::Instant::now();
        let warm = expect_report(client.sweep(&spec, 2).unwrap());
        lats.push(t.elapsed());
        assert_eq!(warm, cold);
    }
    let fastest = lats.iter().min().unwrap();
    assert!(
        *fastest < std::time::Duration::from_millis(40),
        "steady-state warm replay should beat the delayed-ACK floor; \
         fastest of {} warm requests took {:?} (Nagle stall back?)",
        lats.len(),
        fastest
    );

    handle.drain();
    handle.join();
}

#[test]
fn cosim_responses_match_their_golden_too() {
    let handle = serve(ServeConfig::default()).unwrap();
    let spec = SweepSpec::cosim_smoke().with_seeds(vec![0]);
    let mut client = Client::connect(handle.addr()).unwrap();
    let report = expect_report(client.cosim(&spec, 2).unwrap());
    assert_eq!(report, golden("cosim_smoke.json"));
    assert_eq!(client.stats().unwrap().get(NS_COSIM).unwrap().builds, 1);
    handle.drain();
    handle.join();
}

#[test]
fn identical_concurrent_requests_coalesce_onto_one_evaluation() {
    let handle = serve(ServeConfig {
        eval_workers: 2,
        // Stretch the build so the duplicate request provably lands
        // while the first one's evaluation is still in flight.
        eval_delay: Some(std::time::Duration::from_millis(150)),
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr();
    let spec = SweepSpec::smoke().with_seeds(vec![0, 1]);

    // Two tenants, same spec, released together: the store's build-once
    // slot must make one evaluation serve both.
    let barrier = Barrier::new(2);
    let reports: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                s.spawn(|| {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    expect_report(client.sweep(&spec, 2).unwrap())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(reports[0], reports[1]);

    let stats = handle.engine().store_stats();
    let ns = stats.get(NS_SWEEP).expect("serve/sweep namespace");
    assert_eq!(
        ns.builds, 1,
        "two identical concurrent requests must trigger exactly one evaluation"
    );
    assert!(
        ns.coalesced >= 1,
        "the second request must join the in-flight build (hits={}, coalesced={})",
        ns.hits,
        ns.coalesced
    );

    handle.drain();
    handle.join();
}

#[test]
fn a_full_queue_refuses_with_busy_but_cheap_requests_still_answer() {
    let handle = serve(ServeConfig {
        queue_capacity: 0,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    // Capacity 0: every evaluation is refused with a typed Busy …
    assert_eq!(
        client.sweep(&SweepSpec::smoke(), 2).unwrap(),
        EvalOutcome::Busy
    );
    // … while control requests bypass the queue entirely.
    client.ping().unwrap();
    assert!(client.stats().unwrap().get(NS_SWEEP).is_none());
    handle.drain();
    handle.join();
}

#[test]
fn drain_interrupts_a_journaled_sweep_and_a_restart_resumes_byte_identically() {
    let dir = temp_dir("drain");
    let spec = SweepSpec::smoke().with_seeds(vec![0]);
    let store = StoreConfig {
        capacity: None,
        cache_dir: Some(dir.clone()),
    };

    // Server #1 stops the journaled sweep after one fresh job and then
    // drains — the wire answer must be the typed Interrupted.
    let first = serve(ServeConfig {
        store: store.clone(),
        interrupt_after: Some(1),
        drain_after: Some(1),
        eval_workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(first.addr()).unwrap();
    assert_eq!(client.sweep(&spec, 2).unwrap(), EvalOutcome::Interrupted);
    first.join(); // drain_after(1) already tripped

    // Partial progress is journaled on disk.
    let journal =
        ArtifactStore::journal_dir(&dir).join(format!("{:016x}.jsonl", spec.stable_key()));
    let journaled = std::fs::read_to_string(&journal).expect("journal written before drain");
    assert!(
        !journaled.trim().is_empty(),
        "the interrupted sweep must leave completed jobs in the journal"
    );

    // Server #2 over the same cache dir resumes the journal; the merged
    // report must be byte-identical to an uninterrupted cold CLI run.
    let second = serve(ServeConfig {
        store,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(second.addr()).unwrap();
    let resumed = expect_report(client.sweep(&spec, 2).unwrap());
    assert_eq!(resumed, golden("engine_smoke.json"));
    second.drain();
    second.join();

    let _ = std::fs::remove_dir_all(&dir);
}
