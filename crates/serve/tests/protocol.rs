//! Protocol-robustness tests: malformed frames, bad versions, garbage
//! payloads and mid-request disconnects must never take the server (or
//! its shared store) down — at worst they cost the offending client its
//! own connection.

use digiq_core::engine::SweepSpec;
use digiq_serve::server::NS_SWEEP;
use digiq_serve::{serve, Client, EvalOutcome, Response, ServeConfig, MAX_FRAME};
use std::net::Shutdown;

fn start() -> (digiq_serve::ServerHandle, String) {
    let handle = serve(ServeConfig::default()).expect("bind loopback");
    let addr = handle.addr().to_string();
    (handle, addr)
}

/// A length-prefixed frame, built by hand so tests can also build
/// deliberately broken ones.
fn raw_frame(payload: &[u8]) -> Vec<u8> {
    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(payload);
    bytes
}

#[test]
fn garbage_json_gets_a_typed_error_and_the_connection_survives() {
    let (handle, addr) = start();
    let mut client = Client::connect(&addr).unwrap();
    client.send_raw(&raw_frame(b"{{{ not json")).unwrap();
    match client.read_response().unwrap() {
        Response::Error(msg) => assert!(!msg.is_empty()),
        other => panic!("expected a typed error, got {other:?}"),
    }
    // Same connection still serves well-formed requests.
    client.ping().unwrap();
    handle.drain();
    handle.join();
}

#[test]
fn bad_protocol_version_is_a_typed_error_not_a_disconnect() {
    let (handle, addr) = start();
    let mut client = Client::connect(&addr).unwrap();
    client
        .send_raw(&raw_frame(br#"{"v":999,"kind":"ping"}"#))
        .unwrap();
    match client.read_response().unwrap() {
        Response::Error(msg) => assert!(
            msg.contains("version"),
            "error should name the version mismatch: {msg}"
        ),
        other => panic!("expected a typed error, got {other:?}"),
    }
    client.ping().unwrap();
    handle.drain();
    handle.join();
}

#[test]
fn oversized_length_prefix_is_refused_before_allocation() {
    let (handle, addr) = start();
    let mut client = Client::connect(&addr).unwrap();
    // A prefix promising more than MAX_FRAME — the server must refuse
    // without waiting for (or allocating) the announced body.
    client
        .send_raw(&(MAX_FRAME as u32 + 1).to_be_bytes())
        .unwrap();
    match client.read_response().unwrap() {
        Response::Error(msg) => assert!(!msg.is_empty()),
        other => panic!("expected a typed error, got {other:?}"),
    }
    client.ping().unwrap();
    handle.drain();
    handle.join();
}

#[test]
fn truncated_frame_ends_that_connection_but_not_the_server() {
    let (handle, addr) = start();
    let mut half = Client::connect(&addr).unwrap();
    // Two bytes of a four-byte length prefix, then EOF.
    half.send_raw(&[0x00, 0x00]).unwrap();
    half.stream().shutdown(Shutdown::Write).unwrap();
    drop(half);
    // The server keeps accepting and serving other clients.
    let mut other = Client::connect(&addr).unwrap();
    other.ping().unwrap();
    handle.drain();
    handle.join();
}

#[test]
fn mid_request_disconnect_never_poisons_the_store() {
    let (handle, addr) = start();
    let spec = SweepSpec::smoke().with_seeds(vec![0]);

    // Send a full evaluation request, then vanish before the response.
    let mut quitter = Client::connect(&addr).unwrap();
    let req = digiq_serve::Request::Sweep {
        spec: spec.clone(),
        workers: 2,
    };
    quitter
        .send_raw(&raw_frame(
            sfq_hw::json::ToJson::to_json(&req).render().as_bytes(),
        ))
        .unwrap();
    quitter.stream().shutdown(Shutdown::Both).unwrap();
    drop(quitter);

    // A fresh client asking for the same spec gets a full report: the
    // abandoned evaluation completed (or coalesces) and the store slot
    // was never poisoned by the failed response write.
    let mut client = Client::connect(&addr).unwrap();
    match client.sweep(&spec, 2).unwrap() {
        EvalOutcome::Report(text) => assert!(text.starts_with('{')),
        other => panic!("expected a report, got {other:?}"),
    }
    let stats = client.stats().unwrap();
    let ns = stats.get(NS_SWEEP).expect("serve/sweep namespace");
    assert_eq!(
        ns.builds, 1,
        "the disconnected request's evaluation must be reused, not redone"
    );
    handle.drain();
    handle.join();
}
