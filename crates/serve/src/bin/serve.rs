//! The sweep-service daemon.
//!
//! Binds a TCP listener, prints one `digiq-serve listening on ADDR`
//! line to stdout (scripts poll for it; port 0 resolves to the real
//! port), then serves until a shutdown request drains it.
//!
//! Inherits the `digiq_bench::cli` flag family: `--workers N` is the
//! per-sweep worker budget, and the store flags (`--cache-dir DIR`,
//! `--store-capacity N`) configure the shared artifact store — with a
//! cache dir, sweeps are journaled so a drain is resumable after
//! restart. Bespoke flags: `--addr`, `--eval-workers`,
//! `--queue-capacity`, and the CI drain hooks `--drain-after` /
//! `--interrupt-after`.

use digiq_bench::cli::CommonArgs;
use digiq_core::engine::default_workers;
use digiq_serve::{serve, ServeConfig};
use std::io::Write;

fn main() {
    let args = CommonArgs::parse_for(
        "serve",
        &[
            (
                "--addr HOST:PORT",
                "bind address (default 127.0.0.1:0 — a free port)",
            ),
            (
                "--eval-workers N",
                "requests evaluated concurrently (default 2)",
            ),
            (
                "--queue-capacity N",
                "bound on queued requests; beyond it clients get Busy (default 16)",
            ),
            (
                "--drain-after N",
                "testing hook: drain after N evaluation responses",
            ),
            (
                "--interrupt-after N",
                "testing hook: journaled sweeps stop after N fresh jobs (needs --cache-dir)",
            ),
            (
                "--eval-delay-ms N",
                "testing hook: stretch fresh evaluations by N ms so coalescing checks are deterministic",
            ),
            (
                "--dist-claims-ttl-ms N",
                "run journaled sweeps through the distributed claim protocol (stale-claim TTL N ms; needs --cache-dir)",
            ),
        ],
        default_workers(),
    );
    let parse_count = |flag: &str| {
        digiq_bench::arg_value(flag).map(|v| {
            v.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("error: `{flag}` needs a non-negative integer, got `{v}`");
                std::process::exit(2);
            })
        })
    };
    let cfg = ServeConfig {
        addr: digiq_bench::arg_value("--addr").unwrap_or_else(|| "127.0.0.1:0".to_string()),
        eval_workers: parse_count("--eval-workers").unwrap_or(2) as usize,
        sweep_workers: args.workers,
        queue_capacity: parse_count("--queue-capacity").unwrap_or(16) as usize,
        store: args.store_config(),
        drain_after: parse_count("--drain-after"),
        interrupt_after: parse_count("--interrupt-after").map(|n| n as usize),
        eval_delay: parse_count("--eval-delay-ms").map(std::time::Duration::from_millis),
        dist_claims_ttl: parse_count("--dist-claims-ttl-ms").map(std::time::Duration::from_millis),
    };
    let handle = serve(cfg).unwrap_or_else(|e| {
        eprintln!("error: cannot bind: {e}");
        std::process::exit(1);
    });
    println!("digiq-serve listening on {}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.join();
    println!("digiq-serve drained");
}
