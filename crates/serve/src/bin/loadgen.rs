//! Load generator for the sweep service: N concurrent clients replaying
//! a request mix against a running `serve` daemon, reporting requests
//! per second and p50/p99 latency for a **cold** store (first wave,
//! artifacts built) and a **warm** one (second wave, everything
//! memoized). The warm wave only starts after every cold-wave thread
//! has joined, so its percentiles measure steady-state replay — no
//! request in the warm window can own (or wait on) the cold build.
//!
//! Historical note: records through `BENCH_2026-08-07_r3.json` show a
//! warm p99 near 87ms against a sub-ms p50. That was not the cold
//! build leaking into the warm window — it was Nagle's algorithm
//! colliding with delayed ACKs on the small request/response frames
//! (~40ms per stalled write, twice per round trip), fixed by
//! `TCP_NODELAY` on both ends plus single-buffer frame writes. The
//! steady-state invariant is pinned by `warm_replay_is_steady_state`
//! in `crates/serve/tests/service.rs`.
//!
//! Shared flags used: `--seeds K` scales the replayed sweep spec
//! (heavier specs widen the coalescing window), `--workers N` is the
//! per-request worker ask, `--json` emits the summary as JSON (what
//! `scripts/ci.sh --bench-json` records in `BENCH_<date>.json`).
//! Assertions for the CI smoke: `--expect FILE` requires every report
//! byte-identical to the committed golden, `--assert-coalesced`
//! requires that the duplicate concurrent requests coalesced onto one
//! evaluation, `--expect-interrupted` requires the (draining) server to
//! answer Interrupted.

use digiq_bench::cli::CommonArgs;
use digiq_bench::timing::{fmt_ns, percentile};
use digiq_core::engine::SweepSpec;
use digiq_serve::server::{NS_COSIM, NS_SWEEP};
use digiq_serve::{Client, EvalOutcome};
use sfq_hw::json::{Json, ToJson};
use std::sync::Barrier;
use std::time::{Duration, Instant};

struct WaveStats {
    total_ns: f64,
    latencies_ns: Vec<f64>,
}

impl WaveStats {
    fn req_per_s(&self) -> f64 {
        self.latencies_ns.len() as f64 / (self.total_ns / 1e9).max(1e-12)
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("requests", self.latencies_ns.len().to_json()),
            ("req_per_s", self.req_per_s().to_json()),
            ("p50_ns", percentile(&self.latencies_ns, 50.0).to_json()),
            ("p99_ns", percentile(&self.latencies_ns, 99.0).to_json()),
            ("total_ns", self.total_ns.to_json()),
        ])
    }

    fn print(&self, label: &str) {
        println!(
            "{label:5} {:>7.2} req/s   p50 {:>12}   p99 {:>12}   ({} requests in {})",
            self.req_per_s(),
            fmt_ns(percentile(&self.latencies_ns, 50.0)),
            fmt_ns(percentile(&self.latencies_ns, 99.0)),
            self.latencies_ns.len(),
            fmt_ns(self.total_ns),
        );
    }
}

/// One wave: `clients` threads, each `requests` sequential evaluations
/// of the identical spec, released together once every connection is
/// up. Panics (exit non-zero) on any refused or failed request — the
/// smoke asserts clean service.
///
/// `stagger` delays client `c`'s first send by `c * stagger`: the
/// coalescing assertion uses a few milliseconds so later duplicates
/// land mid-build (a cold smoke evaluation runs tens of milliseconds)
/// instead of racing the first request's completion on a loaded box.
fn wave(
    addr: &str,
    spec: &SweepSpec,
    workers: usize,
    clients: usize,
    requests: usize,
    cosim: bool,
    expect: Option<&str>,
    stagger: Duration,
) -> WaveStats {
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = Vec::new();
    let ready = Barrier::new(clients);
    let ready = &ready;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut client = Client::connect(addr)
                        .unwrap_or_else(|e| panic!("client {c}: connect {addr}: {e}"));
                    ready.wait();
                    if c > 0 && !stagger.is_zero() {
                        std::thread::sleep(stagger * c as u32);
                    }
                    let mut lats = Vec::with_capacity(requests);
                    for r in 0..requests {
                        let t = Instant::now();
                        let outcome = if cosim {
                            client.cosim(spec, workers)
                        } else {
                            client.sweep(spec, workers)
                        }
                        .unwrap_or_else(|e| panic!("client {c} request {r}: {e}"));
                        lats.push(t.elapsed().as_nanos() as f64);
                        match outcome {
                            EvalOutcome::Report(text) => {
                                if let Some(golden) = expect {
                                    assert!(
                                        text == golden,
                                        "client {c} request {r}: response diverged from the golden \
                                         ({} vs {} bytes)",
                                        text.len(),
                                        golden.len()
                                    );
                                }
                            }
                            other => {
                                panic!("client {c} request {r}: expected a report, got {other:?}")
                            }
                        }
                    }
                    lats
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("client thread"));
        }
    });
    WaveStats {
        total_ns: t0.elapsed().as_nanos() as f64,
        latencies_ns: latencies,
    }
}

fn main() {
    let args = CommonArgs::parse_for(
        "loadgen",
        &[
            ("--addr HOST:PORT", "server address (required)"),
            ("--clients N", "concurrent client connections (default 4)"),
            ("--requests M", "sequential requests per client (default 2)"),
            (
                "--cosim",
                "replay co-simulation sweeps instead of analytic ones",
            ),
            (
                "--expect FILE",
                "assert every report byte-identical to FILE (a committed golden)",
            ),
            (
                "--assert-coalesced",
                "assert the duplicate concurrent requests coalesced onto one evaluation",
            ),
            (
                "--expect-interrupted",
                "assert the server answers Interrupted (drain smoke), then exit",
            ),
            ("--shutdown", "drain the server after the run"),
        ],
        2,
    );
    let Some(addr) = digiq_bench::arg_value("--addr") else {
        eprintln!("error: `--addr HOST:PORT` is required (the serve daemon prints its address)");
        std::process::exit(2);
    };
    let clients = digiq_bench::arg_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let requests = digiq_bench::arg_value("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let cosim = digiq_bench::has_flag("--cosim");
    let spec = if cosim {
        SweepSpec::cosim_smoke()
    } else {
        SweepSpec::smoke()
    }
    .with_seeds((0..args.seeds.max(1) as u64).collect());

    if digiq_bench::has_flag("--expect-interrupted") {
        let mut client = Client::connect(&addr).unwrap_or_else(|e| {
            eprintln!("error: connect {addr}: {e}");
            std::process::exit(1);
        });
        let outcome = client.sweep(&spec, args.workers).unwrap_or_else(|e| {
            eprintln!("error: sweep request: {e}");
            std::process::exit(1);
        });
        assert_eq!(
            outcome,
            EvalOutcome::Interrupted,
            "expected the draining server to interrupt the journaled sweep"
        );
        println!("interrupted as expected (journaled partial progress on disk)");
        return;
    }

    let expect = digiq_bench::arg_value("--expect").map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read golden `{path}`: {e}");
            std::process::exit(1);
        });
        // The CLI prints the report with a trailing newline; the wire
        // carries the bare bytes.
        text.strip_suffix('\n').unwrap_or(&text).to_string()
    });

    // Only the cold wave is staggered, and only when the coalescing
    // assertion is on — throughput waves send as fast as they can.
    let stagger = if digiq_bench::has_flag("--assert-coalesced") {
        Duration::from_millis(5)
    } else {
        Duration::ZERO
    };
    let cold = wave(
        &addr,
        &spec,
        args.workers,
        clients,
        requests,
        cosim,
        expect.as_deref(),
        stagger,
    );
    let warm = wave(
        &addr,
        &spec,
        args.workers,
        clients,
        requests,
        cosim,
        expect.as_deref(),
        Duration::ZERO,
    );

    let mut probe = Client::connect(&addr).expect("stats connection");
    let stats = probe.stats().expect("stats request");
    let ns = stats
        .get(if cosim { NS_COSIM } else { NS_SWEEP })
        .cloned()
        .unwrap_or_default();

    if digiq_bench::has_flag("--assert-coalesced") {
        assert_eq!(
            ns.builds, 1,
            "identical requests must share one evaluation (saw {} builds)",
            ns.builds
        );
        assert!(
            ns.coalesced >= 1,
            "no request joined the in-flight evaluation (hits={}, coalesced={})",
            ns.hits,
            ns.coalesced
        );
    }

    if args.json {
        println!(
            "{}",
            Json::obj([
                ("clients", clients.to_json()),
                ("requests_per_client", requests.to_json()),
                ("seeds", args.seeds.to_json()),
                ("mode", if cosim { "cosim" } else { "sweep" }.to_json()),
                ("cold", cold.to_json()),
                ("warm", warm.to_json()),
                ("response_builds", ns.builds.to_json()),
                ("response_coalesced", ns.coalesced.to_json()),
            ])
            .render()
        );
    } else {
        println!(
            "loadgen: {clients} clients x {requests} requests ({} mode, {} jobs/request)",
            if cosim { "cosim" } else { "sweep" },
            spec.job_count(),
        );
        cold.print("cold");
        warm.print("warm");
        println!(
            "service evaluated once, reused {} times ({} coalesced onto the in-flight build)",
            ns.hits, ns.coalesced
        );
    }

    if digiq_bench::has_flag("--shutdown") {
        let _ = probe.shutdown();
    }
}
