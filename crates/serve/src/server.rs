//! The multi-tenant sweep server: one shared [`EvalEngine`] (and its
//! `Arc<ArtifactStore>`) behind a `std::net::TcpListener`.
//!
//! Threading model:
//!
//! * one **acceptor** thread owns the listener;
//! * one detached **reader** thread per connection parses frames,
//!   answers cheap requests (ping / stats / shutdown / protocol errors)
//!   inline, and enqueues evaluation work;
//! * a fixed pool of **eval workers** pops evaluation jobs and writes
//!   each response straight to the owning connection (under that
//!   connection's write lock, so responses never interleave and a
//!   drained server never exits with an unwritten response).
//!
//! Admission control is a bounded queue with **per-client fairness**:
//! each connection gets its own FIFO and workers pop round-robin across
//! connections, so one client streaming requests cannot starve another
//! ([`QueueState`] is unit-tested directly). When the queue is full the
//! request is refused with a typed [`Response::Busy`] — never a stall.
//!
//! Identical in-flight requests **coalesce**: the rendered response is
//! memoized in the store under the `serve/sweep` / `serve/cosim`
//! namespace keyed by [`SweepSpec::stable_key`], so the store's
//! build-once slots make the second of two concurrent identical
//! requests wait for (and share) the first one's evaluation — visible
//! in the store's per-namespace `coalesced` counters.
//!
//! **Graceful drain** (a [`Request::Shutdown`], or the `drain_after`
//! testing hook): the server stops admitting work, flushes queued jobs
//! with [`Response::Draining`], and stops in-flight *journaled* sweeps
//! between jobs via [`RunControl::stop`] — completed jobs are already
//! in the PR-5 `SweepJournal`, so a restarted server resumes them and
//! the merged report is byte-identical to an uninterrupted run.
//! Non-journaled sweeps (no `cache_dir`) run to completion before the
//! drain finishes.

use crate::proto::{read_json, write_frame, write_json, Request, Response};
use digiq_core::engine::{DistributedConfig, EvalEngine, RunControl, SweepSpec};
use digiq_core::store::{ArtifactStore, StoreConfig, SweepJournal};
use sfq_hw::cost::CostModel;
use sfq_hw::json::ToJson;
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Poison-tolerant lock (the crate-wide idiom; a panicked holder left
/// consistent state or died before touching it).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Store namespace memoizing rendered analytic-sweep responses.
pub const NS_SWEEP: &str = "serve/sweep";
/// Store namespace memoizing rendered co-simulation responses.
pub const NS_COSIM: &str = "serve/cosim";

/// Server configuration (the `serve` binary builds this from the
/// `CommonArgs` flag family plus its own extras).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks a free port (the handle reports it).
    pub addr: String,
    /// Eval worker threads — the number of requests evaluated
    /// concurrently.
    pub eval_workers: usize,
    /// Worker threads per sweep (requests asking for more are capped).
    pub sweep_workers: usize,
    /// Bound on queued evaluation requests across all clients; a full
    /// queue refuses with [`Response::Busy`]. Capacity 0 refuses every
    /// evaluation request (the admission-control test fixture).
    pub queue_capacity: usize,
    /// Store capacity / persistence (the `CommonArgs` store flags).
    /// With a `cache_dir`, sweeps are journaled and drain is resumable.
    pub store: StoreConfig,
    /// Testing hook: initiate drain after this many evaluation
    /// responses have been written (the CI drain smoke uses 1).
    pub drain_after: Option<u64>,
    /// Testing hook: run journaled sweeps with this fresh-job budget
    /// (`sweep --interrupt-after` across the wire), so a drain-resume
    /// check interrupts deterministically.
    pub interrupt_after: Option<usize>,
    /// Testing hook: sleep this long at the start of every *fresh*
    /// evaluation (store misses only — memoized responses stay fast).
    /// A cold smoke evaluation runs in single-digit milliseconds, far
    /// too fast for a coalescing check to reliably land a duplicate
    /// mid-build; widening the build window makes those checks
    /// deterministic instead of a scheduler race.
    pub eval_delay: Option<std::time::Duration>,
    /// With a cache dir, run sweeps through the distributed claim
    /// protocol (this TTL as the stale-claim expiry) instead of the
    /// plain journal: the daemon then cooperates with any external
    /// `sweep --worker-id` processes sharing the same `--cache-dir`.
    pub dist_claims_ttl: Option<std::time::Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            eval_workers: 2,
            sweep_workers: 2,
            queue_capacity: 16,
            store: StoreConfig::default(),
            drain_after: None,
            interrupt_after: None,
            eval_delay: None,
            dist_claims_ttl: None,
        }
    }
}

/// One queued evaluation job: the request plus the connection to answer
/// on and the completion signal its reader thread blocks on.
struct Job {
    client: u64,
    request: Request,
    conn: Arc<Mutex<TcpStream>>,
    done: mpsc::Sender<()>,
}

/// The fairness queue: one FIFO per client connection, popped
/// round-robin across clients. Kept separate from the I/O so the
/// scheduling policy is directly unit-testable.
struct QueueState {
    queues: BTreeMap<u64, VecDeque<Job>>,
    /// Round-robin ring of client ids with non-empty queues.
    ring: VecDeque<u64>,
    len: usize,
}

impl QueueState {
    fn new() -> Self {
        QueueState {
            queues: BTreeMap::new(),
            ring: VecDeque::new(),
            len: 0,
        }
    }

    fn push(&mut self, job: Job) {
        let q = self.queues.entry(job.client).or_default();
        if q.is_empty() {
            self.ring.push_back(job.client);
        }
        q.push_back(job);
        self.len += 1;
    }

    /// Pops the next job round-robin: the head client's oldest request,
    /// then the client goes to the back of the ring (if it still has
    /// work).
    fn pop(&mut self) -> Option<Job> {
        let client = self.ring.pop_front()?;
        let q = self.queues.get_mut(&client)?;
        let job = q.pop_front()?;
        if q.is_empty() {
            self.queues.remove(&client);
        } else {
            self.ring.push_back(client);
        }
        self.len -= 1;
        Some(job)
    }
}

struct Shared {
    engine: EvalEngine,
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    available: Condvar,
    draining: AtomicBool,
    served: AtomicU64,
    addr: SocketAddr,
}

impl Shared {
    fn initiate_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.available.notify_all();
        // Unblock the acceptor, which re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
    }

    /// Writes `resp` (and, for reports, the raw body frame) to the
    /// job's connection. Write errors mean the client went away — the
    /// server keeps serving everyone else.
    fn respond(conn: &Mutex<TcpStream>, resp: &Response, body: Option<&[u8]>) {
        let mut stream = lock_unpoisoned(conn);
        let _ = write_json(&mut *stream, &resp.to_json());
        if let Some(body) = body {
            let _ = write_frame(&mut *stream, body);
        }
        let _ = stream.flush();
    }

    /// Evaluates one admitted request. The rendered report is memoized
    /// in the store keyed by the spec fingerprint, which is what makes
    /// identical concurrent requests coalesce onto one evaluation.
    fn evaluate(&self, request: &Request) -> (Response, Option<Arc<Option<String>>>) {
        let (spec, workers, cosim) = match request {
            Request::Sweep { spec, workers } => (spec, *workers, false),
            Request::Cosim { spec, workers } => (spec, *workers, true),
            _ => unreachable!("only evaluation requests are queued"),
        };
        let workers = workers.min(self.cfg.sweep_workers).max(1);
        let ns = if cosim { NS_COSIM } else { NS_SWEEP };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.engine.store().get_or_build(ns, spec.stable_key(), || {
                if let Some(delay) = self.cfg.eval_delay {
                    std::thread::sleep(delay);
                }
                if cosim {
                    Some(
                        self.engine
                            .session()
                            .run_cosim(spec, workers)
                            .to_json_string(),
                    )
                } else {
                    self.run_sweep(spec, workers)
                }
            })
        }));
        match result {
            Ok(rendered) => match &*rendered {
                Some(text) => (
                    Response::Report {
                        bytes: text.len() as u64,
                    },
                    Some(rendered.clone()),
                ),
                // The build was stopped by a drain (journaled partial
                // progress is on disk). The slot stays `None` for this
                // process's remaining lifetime — it is draining anyway.
                None => (Response::Interrupted, None),
            },
            Err(_) => (
                Response::Error(
                    "evaluation failed (spec inconsistent with the device grid?)".to_string(),
                ),
                None,
            ),
        }
    }

    /// One analytic sweep: journaled (resumable, drain-stoppable) when
    /// the store persists to disk, otherwise a plain deterministic run.
    /// Either way the rendered bytes equal a cold `sweep` CLI run.
    fn run_sweep(&self, spec: &SweepSpec, workers: usize) -> Option<String> {
        let session = self.engine.session();
        if let Some(dir) = &self.cfg.store.cache_dir {
            if let Some(ttl) = self.cfg.dist_claims_ttl {
                // Claim-protocol mode: this daemon acts as one more
                // distributed worker over the shared cache dir, so
                // external `sweep --worker-id` processes can share the
                // job pool. Falls back to a plain run if the claims dir
                // is unusable.
                let mut dcfg = DistributedConfig::new(format!("serve-{}", std::process::id()));
                dcfg.claim_ttl = ttl;
                return match session.run_distributed(spec, dir, &dcfg, Some(&self.draining)) {
                    Ok(report) => report.map(|r| r.to_json_string()),
                    Err(_) => Some(session.run_deterministic(spec, workers).to_json_string()),
                };
            }
            let journal_dir = ArtifactStore::journal_dir(dir);
            let Ok(journal) = SweepJournal::open(&journal_dir, spec.stable_key()) else {
                // Journal unavailable: fall back to a plain run (still
                // byte-identical, just not drain-resumable).
                return Some(session.run_deterministic(spec, workers).to_json_string());
            };
            let ctl = RunControl {
                interrupt_after: self.cfg.interrupt_after,
                stop: Some(&self.draining),
            };
            session
                .run_journaled(spec, workers, &journal, true, ctl)
                .map(|report| report.to_json_string())
        } else {
            Some(session.run_deterministic(spec, workers).to_json_string())
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = lock_unpoisoned(&self.queue);
                loop {
                    if let Some(job) = queue.pop() {
                        break Some(job);
                    }
                    if self.draining.load(Ordering::SeqCst) {
                        break None;
                    }
                    queue = self
                        .available
                        .wait(queue)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let Some(job) = job else { break };
            let (resp, body) = if self.draining.load(Ordering::SeqCst) {
                // Admitted before the drain started: refuse rather than
                // start long work on a server that is shutting down.
                (Response::Draining, None)
            } else {
                self.evaluate(&job.request)
            };
            Self::respond(
                &job.conn,
                &resp,
                body.as_deref()
                    .and_then(|b| b.as_deref())
                    .map(str::as_bytes),
            );
            let _ = job.done.send(());
            let served = self.served.fetch_add(1, Ordering::SeqCst) + 1;
            if self.cfg.drain_after.is_some_and(|n| served >= n) {
                self.initiate_drain();
            }
        }
        // Drain: flush whatever is still queued so no reader blocks
        // forever (first worker out does the sweep; `pop` is empty for
        // the rest).
        loop {
            let job = lock_unpoisoned(&self.queue).pop();
            let Some(job) = job else { break };
            Self::respond(&job.conn, &Response::Draining, None);
            let _ = job.done.send(());
        }
    }

    /// Handles one connection until EOF or an I/O error. Protocol
    /// errors (garbage JSON, bad version, out-of-bounds specs) answer
    /// with [`Response::Error`] and keep the connection open; only
    /// transport-level failures end it.
    fn reader_loop(&self, stream: TcpStream, client: u64) {
        let conn = Arc::new(Mutex::new(stream));
        loop {
            // Read without holding the write lock (writes happen from
            // eval workers); a second stream handle shares the socket.
            let frame = {
                let Ok(mut reading) = lock_unpoisoned(&conn).try_clone() else {
                    return;
                };
                read_json(&mut reading)
            };
            let parsed = match frame {
                Ok(j) => Request::from_json(&j),
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    Self::respond(&conn, &Response::Error(e.to_string()), None);
                    continue;
                }
                // EOF / reset / truncated frame: the client went away.
                Err(_) => return,
            };
            match parsed {
                Err(msg) => Self::respond(&conn, &Response::Error(msg), None),
                Ok(Request::Ping) => Self::respond(&conn, &Response::Pong, None),
                Ok(Request::Stats) => {
                    Self::respond(&conn, &Response::Stats(self.engine.store().stats()), None)
                }
                Ok(Request::Shutdown) => {
                    Self::respond(&conn, &Response::Draining, None);
                    self.initiate_drain();
                }
                Ok(request @ (Request::Sweep { .. } | Request::Cosim { .. })) => {
                    let (done, done_rx) = mpsc::channel();
                    let admitted = {
                        let mut queue = lock_unpoisoned(&self.queue);
                        if self.draining.load(Ordering::SeqCst) {
                            Err(Response::Draining)
                        } else if queue.len >= self.cfg.queue_capacity {
                            Err(Response::Busy {
                                queued: queue.len as u64,
                            })
                        } else {
                            queue.push(Job {
                                client,
                                request,
                                conn: Arc::clone(&conn),
                                done,
                            });
                            Ok(())
                        }
                    };
                    match admitted {
                        Err(resp) => Self::respond(&conn, &resp, None),
                        Ok(()) => {
                            self.available.notify_one();
                            // The worker writes the response itself;
                            // wait so responses stay in request order.
                            let _ = done_rx.recv();
                        }
                    }
                }
            }
        }
    }
}

/// A running server: the bound address plus the join handle for a
/// graceful exit. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::drain`] (or send a shutdown request) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The shared engine (test access to the store counters).
    pub fn engine(&self) -> &EvalEngine {
        &self.shared.engine
    }

    /// Initiates a graceful drain, as if a shutdown request arrived.
    pub fn drain(&self) {
        self.shared.initiate_drain();
    }

    /// Waits for the drain to complete (acceptor and eval workers
    /// exited; every queued request answered).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Binds and starts a server.
///
/// # Errors
///
/// Returns the bind error; everything after the bind is reported to
/// clients over the protocol instead.
pub fn serve(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let engine = EvalEngine::with_store_config(CostModel::default(), cfg.store.clone());
    let shared = Arc::new(Shared {
        engine,
        cfg,
        queue: Mutex::new(QueueState::new()),
        available: Condvar::new(),
        draining: AtomicBool::new(false),
        served: AtomicU64::new(0),
        addr,
    });

    let workers = (0..shared.cfg.eval_workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("digiq-serve-eval-{i}"))
                .spawn(move || shared.worker_loop())
                .expect("spawn eval worker")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("digiq-serve-accept".to_string())
            .spawn(move || {
                let mut next_client = 0u64;
                for stream in listener.incoming() {
                    if shared.draining.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Responses are small frames followed by a read of
                    // the next request; without TCP_NODELAY they sit in
                    // the kernel until the client's delayed ACK.
                    let _ = stream.set_nodelay(true);
                    let client = next_client;
                    next_client += 1;
                    let shared = Arc::clone(&shared);
                    // Detached on purpose: readers die with their
                    // connection (or with the process), never block the
                    // drain.
                    let _ = std::thread::Builder::new()
                        .name(format!("digiq-serve-conn-{client}"))
                        .spawn(move || shared.reader_loop(stream, client));
                }
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        shared,
        acceptor,
        workers,
    })
}

/// The directory a `--cache-dir` flag hands the server (mirrors the
/// batch CLI so serve and `sweep` share journals and artifacts).
pub fn cache_dir_of(cfg: &ServeConfig) -> Option<PathBuf> {
    cfg.store.cache_dir.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_job(client: u64, tag: &str) -> (Job, mpsc::Receiver<()>) {
        // A throwaway loopback socket: QueueState never touches it.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (done, rx) = mpsc::channel();
        (
            Job {
                client,
                request: Request::Sweep {
                    spec: SweepSpec::smoke().with_seeds(vec![tag.len() as u64]),
                    workers: 1,
                },
                conn: Arc::new(Mutex::new(stream)),
                done,
            },
            rx,
        )
    }

    #[test]
    fn queue_pops_round_robin_across_clients() {
        let mut q = QueueState::new();
        let mut keep = Vec::new();
        for (client, tag) in [(7, "a1"), (7, "a2"), (7, "a3"), (9, "b1"), (9, "b2")] {
            let (job, rx) = fake_job(client, tag);
            q.push(job);
            keep.push(rx);
        }
        assert_eq!(q.len, 5);
        // One greedy client (three queued) cannot starve the other:
        // pops alternate 7, 9, 7, 9, 7.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|j| j.client)).collect();
        assert_eq!(order, vec![7, 9, 7, 9, 7]);
        assert_eq!(q.len, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn queue_len_tracks_pushes_and_pops() {
        let mut q = QueueState::new();
        let (job, _rx) = fake_job(1, "x");
        q.push(job);
        let (job, _rx2) = fake_job(2, "y");
        q.push(job);
        assert_eq!(q.len, 2);
        assert!(q.pop().is_some());
        assert_eq!(q.len, 1);
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
        assert_eq!(q.len, 0);
    }
}
