//! digiq-serve: the DigiQ evaluation engine as a multi-tenant service.
//!
//! The batch binaries (`sweep`, `cosim`) answer one question per
//! process; this crate lifts the same [`digiq_core::engine::EvalEngine`]
//! behind a std-only TCP daemon so many concurrent clients share one
//! engine, one artifact store, and one set of builds:
//!
//! * [`proto`] — the length-prefixed [`sfq_hw::json`] wire protocol
//!   (versioned control frames; report bodies as raw frames so the
//!   golden byte-identity guarantee survives the wire untouched);
//! * [`server`] — the daemon: bounded admission with per-client
//!   round-robin fairness, request coalescing through the store's
//!   build-once slots, and journaled graceful drain (restart-resume
//!   merges byte-identical, extending the PR-5 interrupt/resume
//!   contract across a process boundary);
//! * [`client`] — the blocking client `loadgen` and the integration
//!   tests drive.
//!
//! Binaries: `serve` (the daemon, inheriting the `digiq_bench::cli`
//! store flag family) and `loadgen` (N concurrent clients, req/s and
//! p50/p99 latency, warm vs cold store).

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, EvalOutcome};
pub use proto::{Request, Response, MAX_FRAME, PROTOCOL_VERSION};
pub use server::{serve, ServeConfig, ServerHandle};
