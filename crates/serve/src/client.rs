//! A minimal blocking client for the sweep service (what `loadgen` and
//! the integration tests drive).

use crate::proto::{read_frame, read_json, write_json, Request, Response};
use digiq_core::engine::SweepSpec;
use digiq_core::store::StoreStats;
use sfq_hw::json::ToJson;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// What an evaluation request came back as.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalOutcome {
    /// The rendered report — byte-identical to the batch CLI's stdout
    /// for the same spec.
    Report(String),
    /// Refused by admission control; retry later.
    Busy,
    /// The server is draining.
    Draining,
    /// A draining server stopped the journaled sweep; resend after the
    /// server restarts to resume.
    Interrupted,
    /// Typed server-side failure.
    Error(String),
}

/// One connection to a sweep server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Request/response round trips over small frames: Nagle would
        // hold each request back for the server's delayed ACK (~40ms)
        // once the connection leaves its initial quickack phase, which
        // used to dominate warm-wave latency percentiles in `loadgen`.
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    fn round_trip(&mut self, request: &Request) -> io::Result<Response> {
        write_json(&mut self.stream, &request.to_json())?;
        let j = read_json(&mut self.stream)?;
        Response::from_json(&j).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a non-pong answer.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Store-wide counters (per-namespace hits / misses / builds /
    /// coalesced — what the coalescing assertions read).
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on a non-stats answer.
    pub fn stats(&mut self) -> io::Result<StoreStats> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on an unexpected answer.
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Draining => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Evaluates an analytic sweep.
    ///
    /// # Errors
    ///
    /// Transport-level failures only; protocol-level refusals are
    /// [`EvalOutcome`] variants.
    pub fn sweep(&mut self, spec: &SweepSpec, workers: usize) -> io::Result<EvalOutcome> {
        self.eval(Request::Sweep {
            spec: spec.clone(),
            workers,
        })
    }

    /// Evaluates a co-simulation sweep.
    ///
    /// # Errors
    ///
    /// Transport-level failures only.
    pub fn cosim(&mut self, spec: &SweepSpec, workers: usize) -> io::Result<EvalOutcome> {
        self.eval(Request::Cosim {
            spec: spec.clone(),
            workers,
        })
    }

    fn eval(&mut self, request: Request) -> io::Result<EvalOutcome> {
        match self.round_trip(&request)? {
            Response::Report { bytes } => {
                let body = read_frame(&mut self.stream)?;
                if body.len() as u64 != bytes {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("report header promised {bytes} bytes, got {}", body.len()),
                    ));
                }
                let text = String::from_utf8(body)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                Ok(EvalOutcome::Report(text))
            }
            Response::Busy { .. } => Ok(EvalOutcome::Busy),
            Response::Draining => Ok(EvalOutcome::Draining),
            Response::Interrupted => Ok(EvalOutcome::Interrupted),
            Response::Error(msg) => Ok(EvalOutcome::Error(msg)),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends raw bytes down the socket (the protocol-robustness tests
    /// inject malformed frames with this).
    ///
    /// # Errors
    ///
    /// Propagates the write error.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads the next control frame as a parsed [`Response`] (used after
    /// [`Client::send_raw`]).
    ///
    /// # Errors
    ///
    /// I/O errors, or `InvalidData` on an unparsable response.
    pub fn read_response(&mut self) -> io::Result<Response> {
        let j = read_json(&mut self.stream)?;
        Response::from_json(&j).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// The underlying stream (tests shut it down mid-request).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

impl Read for Client {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response: {resp:?}"),
    )
}
