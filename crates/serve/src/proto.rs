//! The wire protocol of the sweep service: length-prefixed
//! [`sfq_hw::json`] frames over TCP.
//!
//! Every frame is a big-endian `u32` byte length followed by that many
//! payload bytes; frames above [`MAX_FRAME`] are rejected before any
//! allocation, so a hostile length prefix cannot balloon the server.
//! Control payloads are compact JSON objects carrying a `v` protocol
//! version ([`PROTOCOL_VERSION`]) and a `kind` discriminant; the one
//! exception is a report body, which follows its [`Response::Report`]
//! header as a **raw** frame — the server ships the exact bytes the
//! batch `sweep`/`cosim` CLI would print, never re-rendered, so the
//! byte-identity guarantee the golden files pin survives the wire by
//! construction.
//!
//! The version discipline mirrors the store's `DISK_FORMAT_VERSION`
//! (see ROADMAP.md standing constraints): any change to frame layout,
//! request/response fields, or their semantics bumps
//! [`PROTOCOL_VERSION`], and a server rejects mismatched requests with
//! a typed [`Response::Error`] rather than guessing.

use digiq_core::engine::SweepSpec;
use digiq_core::store::StoreStats;
use sfq_hw::json::{Json, ToJson};
use std::io::{self, Read, Write};

/// Version tag carried by every control frame. Bump on any wire-visible
/// change, in lockstep with the README protocol table.
///
/// v2: `Stats` responses gained the store's `tmp_swept` field (orphaned
/// atomic-write temp files swept at store open).
pub const PROTOCOL_VERSION: u64 = 2;

/// Upper bound on a single frame's payload (32 MiB) — larger length
/// prefixes are rejected before allocation.
pub const MAX_FRAME: usize = 32 << 20;

/// Writes one length-prefixed frame.
///
/// The prefix and payload go out in a **single** `write_all` (same bytes
/// on the wire, so no protocol bump): a separate 4-byte prefix write is
/// a textbook write-write-read pattern that Nagle's algorithm holds back
/// until the peer's delayed ACK (~40 ms a write), which is exactly the
/// steady-state latency skew the loadgen percentiles used to show.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads above [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    let mut framed = Vec::with_capacity(4 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    framed.extend_from_slice(payload);
    w.write_all(&framed)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// `UnexpectedEof` on a truncated prefix or body, `InvalidData` on a
/// length above [`MAX_FRAME`], plus any underlying I/O error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Writes a control frame (a JSON value rendered compactly).
///
/// # Errors
///
/// Propagates [`write_frame`] errors.
pub fn write_json(w: &mut impl Write, j: &Json) -> io::Result<()> {
    write_frame(w, j.render().as_bytes())
}

/// Reads a control frame and parses it as JSON.
///
/// # Errors
///
/// Propagates [`read_frame`] errors; `InvalidData` on non-UTF-8 or
/// malformed JSON.
pub fn read_json(r: &mut impl Read) -> io::Result<Json> {
    let payload = read_frame(r)?;
    let text =
        std::str::from_utf8(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    Json::parse(text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn versioned(kind: &str, mut fields: Vec<(&'static str, Json)>) -> Json {
    let mut all = vec![
        ("v", PROTOCOL_VERSION.to_json()),
        ("kind", Json::Str(kind.to_string())),
    ];
    all.append(&mut fields);
    Json::obj(all)
}

fn check_version(j: &Json, ctx: &str) -> Result<(), String> {
    let v = j.count_field("v", ctx)?;
    if v != PROTOCOL_VERSION {
        return Err(format!(
            "{ctx} protocol version {v} unsupported (this server speaks {PROTOCOL_VERSION})"
        ));
    }
    Ok(())
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Store-wide counters (per-namespace hits/misses/builds/coalesced).
    Stats,
    /// Initiate graceful drain: stop admitting work, journal or finish
    /// what is in flight, then exit.
    Shutdown,
    /// Evaluate an analytic sweep.
    Sweep {
        /// The sweep definition.
        spec: SweepSpec,
        /// Requested worker threads (the server caps this at its own
        /// per-sweep budget; the report bytes are worker-invariant).
        workers: usize,
    },
    /// Evaluate a co-simulation sweep.
    Cosim {
        /// The sweep definition.
        spec: SweepSpec,
        /// Requested worker threads (server-capped).
        workers: usize,
    },
}

impl Request {
    /// Reads a request back from its wire form.
    ///
    /// # Errors
    ///
    /// Returns the version mismatch, unknown kind, or the first
    /// missing/mistyped field (including [`SweepSpec::from_json`]
    /// bounds).
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "request";
        check_version(j, CTX)?;
        let spec_and_workers = |j: &Json| -> Result<(SweepSpec, usize), String> {
            let spec = SweepSpec::from_json(j.get("spec").ok_or("request missing `spec`")?)?;
            let workers = j.count_field("workers", CTX)? as usize;
            if !(1..=4096).contains(&workers) {
                return Err(format!(
                    "request `workers` out of range 1..=4096: {workers}"
                ));
            }
            Ok((spec, workers))
        };
        match j.str_field("kind", CTX)? {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "sweep" => {
                let (spec, workers) = spec_and_workers(j)?;
                Ok(Request::Sweep { spec, workers })
            }
            "cosim" => {
                let (spec, workers) = spec_and_workers(j)?;
                Ok(Request::Cosim { spec, workers })
            }
            other => Err(format!("unknown request kind `{other}`")),
        }
    }
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Ping => versioned("ping", vec![]),
            Request::Stats => versioned("stats", vec![]),
            Request::Shutdown => versioned("shutdown", vec![]),
            Request::Sweep { spec, workers } => versioned(
                "sweep",
                vec![("spec", spec.to_json()), ("workers", workers.to_json())],
            ),
            Request::Cosim { spec, workers } => versioned(
                "cosim",
                vec![("spec", spec.to_json()), ("workers", workers.to_json())],
            ),
        }
    }
}

/// One server response. [`Response::Report`] is a header only — the
/// report body follows as a separate raw frame of exactly `bytes`
/// bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// [`Request::Ping`] answer.
    Pong,
    /// [`Request::Stats`] answer.
    Stats(StoreStats),
    /// Evaluation finished; a raw frame with the report JSON follows.
    Report {
        /// Length of the raw report frame that follows.
        bytes: u64,
    },
    /// Admission control refused the request: the bounded queue is
    /// full. Retry later; nothing was evaluated.
    Busy {
        /// Requests currently queued (the configured capacity).
        queued: u64,
    },
    /// The server is draining and no longer admits evaluation work.
    Draining,
    /// A draining server stopped this journaled sweep between jobs; the
    /// completed jobs are journaled on disk and a restarted server will
    /// resume them (`Sweep` again after restart).
    Interrupted,
    /// The request could not be served (parse error, version mismatch,
    /// or an evaluation failure). The connection stays usable.
    Error(String),
}

impl Response {
    /// Reads a response back from its wire form.
    ///
    /// # Errors
    ///
    /// Returns the version mismatch, unknown kind, or the first
    /// missing/mistyped field.
    pub fn from_json(j: &Json) -> Result<Self, String> {
        const CTX: &str = "response";
        check_version(j, CTX)?;
        match j.str_field("kind", CTX)? {
            "pong" => Ok(Response::Pong),
            "stats" => Ok(Response::Stats(StoreStats::from_json(
                j.get("store").ok_or("response missing `store`")?,
            )?)),
            "report" => Ok(Response::Report {
                bytes: j.count_field("bytes", CTX)?,
            }),
            "busy" => Ok(Response::Busy {
                queued: j.count_field("queued", CTX)?,
            }),
            "draining" => Ok(Response::Draining),
            "interrupted" => Ok(Response::Interrupted),
            "error" => Ok(Response::Error(j.str_field("message", CTX)?.to_string())),
            other => Err(format!("unknown response kind `{other}`")),
        }
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Pong => versioned("pong", vec![]),
            Response::Stats(stats) => versioned("stats", vec![("store", stats.to_json())]),
            Response::Report { bytes } => versioned("report", vec![("bytes", bytes.to_json())]),
            Response::Busy { queued } => versioned("busy", vec![("queued", queued.to_json())]),
            Response::Draining => versioned("draining", vec![]),
            Response::Interrupted => versioned("interrupted", vec![]),
            Response::Error(message) => {
                versioned("error", vec![("message", Json::Str(message.clone()))])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_and_truncated_frames_are_rejected() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
        assert_eq!(
            read_frame(&mut io::Cursor::new(oversized))
                .unwrap_err()
                .kind(),
            io::ErrorKind::InvalidData
        );
        // A length prefix promising more bytes than arrive.
        let mut truncated = Vec::new();
        truncated.extend_from_slice(&100u32.to_be_bytes());
        truncated.extend_from_slice(b"short");
        assert_eq!(
            read_frame(&mut io::Cursor::new(truncated))
                .unwrap_err()
                .kind(),
            io::ErrorKind::UnexpectedEof
        );
        let mut w = Vec::new();
        assert!(write_frame(&mut w, &vec![0u8; MAX_FRAME + 1]).is_err());
    }

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Sweep {
                spec: SweepSpec::smoke(),
                workers: 2,
            },
            Request::Cosim {
                spec: SweepSpec::cosim_smoke(),
                workers: 3,
            },
        ] {
            let j = Json::parse(&req.to_json_string()).unwrap();
            assert_eq!(Request::from_json(&j), Ok(req));
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Pong,
            Response::Stats(StoreStats::default()),
            Response::Report { bytes: 1234 },
            Response::Busy { queued: 8 },
            Response::Draining,
            Response::Interrupted,
            Response::Error("nope".to_string()),
        ] {
            let j = Json::parse(&resp.to_json_string()).unwrap();
            assert_eq!(Response::from_json(&j), Ok(resp));
        }
    }

    #[test]
    fn version_mismatch_and_garbage_are_typed_errors() {
        let future = Json::obj([("v", 99u64.to_json()), ("kind", "ping".to_json())]);
        assert!(Request::from_json(&future)
            .unwrap_err()
            .contains("protocol version 99"));
        let unkinded = Json::obj([("v", PROTOCOL_VERSION.to_json())]);
        assert!(Request::from_json(&unkinded).is_err());
        let unknown = Json::obj([
            ("v", PROTOCOL_VERSION.to_json()),
            ("kind", "explode".to_json()),
        ]);
        assert!(Request::from_json(&unknown)
            .unwrap_err()
            .contains("unknown request kind"));
        let bad_workers = Json::obj([
            ("v", PROTOCOL_VERSION.to_json()),
            ("kind", "sweep".to_json()),
            ("spec", SweepSpec::smoke().to_json()),
            ("workers", 0u64.to_json()),
        ]);
        assert!(Request::from_json(&bad_workers)
            .unwrap_err()
            .contains("workers"));
    }
}
