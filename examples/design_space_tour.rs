//! Tour the Table I design space: synthesize each controller at 1,024
//! qubits, print the Fig 8 cost triple, and the §VI-A3 scalability.
//!
//! ```text
//! cargo run --release --example design_space_tour
//! ```

use digiq::digiq_core::design::ControllerDesign;
use digiq::digiq_core::design::SystemConfig;
use digiq::digiq_core::hardware::build_hardware;
use digiq::digiq_core::scalability::{max_qubits, POWER_BUDGET_W};
use digiq::sfq_hw::cost::CostModel;

fn main() {
    let model = CostModel::default();
    let points = [
        (ControllerDesign::SfqMimdNaive, 1usize),
        (ControllerDesign::SfqMimdDecomp, 1),
        (ControllerDesign::DigiqMin { bs: 2 }, 2),
        (ControllerDesign::DigiqMin { bs: 4 }, 2),
        (ControllerDesign::DigiqOpt { bs: 8 }, 2),
        (ControllerDesign::DigiqOpt { bs: 16 }, 2),
    ];
    println!(
        "{:20} {:>9} {:>11} {:>7} {:>11}",
        "design", "power(W)", "area(mm2)", "cables", "max qubits"
    );
    for (design, groups) in points {
        let cfg = SystemConfig::paper_default(design, groups);
        let hw = build_hardware(&cfg, &model);
        let scale = max_qubits(design, groups, &model, POWER_BUDGET_W);
        println!(
            "{:20} {:>9.3} {:>11.1} {:>7} {:>11}",
            design.to_string(),
            hw.report.power_w,
            hw.report.area_mm2,
            hw.cables,
            scale
        );
        // The dominant module tells the design's story.
        let biggest = hw
            .modules
            .iter()
            .max_by(|a, b| (a.stats.total_jj * a.count).cmp(&(b.stats.total_jj * b.count)))
            .unwrap();
        println!("    dominant block: {} ×{}", biggest.name, biggest.count);
    }
    println!("\npaper: naive 5.9 W, decomp 10.7 W; DigiQ_min(BS=2) >42k qubits at 10 W");
}
