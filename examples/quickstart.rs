//! Quickstart: build a DigiQ controller, compile a small circuit through
//! the full pipeline, and print the hardware + execution report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use digiq::digiq_core::design::ControllerDesign;
use digiq::digiq_core::system::DigiqSystem;
use digiq::qcircuit::ir::Circuit;
use digiq::sfq_hw::cost::CostModel;

fn main() {
    // 1. Pick a design point: DigiQ_opt with 8 broadcast delays, 2 groups.
    let system = DigiqSystem::build(
        ControllerDesign::DigiqOpt { bs: 8 },
        2,
        &CostModel::default(),
    );

    // 2. The synthesized hardware (Fig 8's numbers for this point).
    let hw = system.hardware.as_ref().expect("buildable design");
    println!("hardware @ 1,024 qubits:");
    println!("  power      {:8.3} W", hw.report.power_w);
    println!("  area       {:8.1} mm2", hw.report.area_mm2);
    println!(
        "  worst stage{:8.1} ps (40 ps clock)",
        hw.report.worst_stage_ps
    );
    println!("  cables     {:8}", hw.cables);
    println!("  JJs        {:8}", hw.report.total_jj);

    // 3. A small GHZ-flavoured workload.
    let mut circuit = Circuit::new(32);
    circuit.h(0);
    for q in 0..31 {
        circuit.cx(q, q + 1);
    }
    for q in 0..32 {
        circuit.t(q);
    }

    // 4. Compile: lower → route on the 32×32 grid → schedule → execute.
    let report = system.evaluate_circuit("ghz32+t", &circuit);
    println!(
        "\nexecution of {} ({} logical gates):",
        report.benchmark, report.logical_gates
    );
    println!("  SWAPs inserted      {:8}", report.swaps);
    println!("  schedule slots      {:8}", report.slots);
    println!("  total time          {:8.1} ns", report.exec.total_ns);
    println!("  vs Impossible MIMD  {:8.2}x", report.normalized_time);
}
