//! Reproduce Table II: search the 4–6.5 GHz band for parking frequencies
//! whose 256 delay-reachable Rz phases cover the unit circle with ≤1e-4
//! worst-case error, ranked by drift tolerance.
//!
//! ```text
//! cargo run --release --example parking_frequencies
//! ```

use digiq::calib::parking::{best_delay_for_angle, parking_search, worst_rz_error};

fn main() {
    println!("searching 4.0–6.5 GHz for Rz parking frequencies (N = 255, 40 ps clock)…");
    let rows = parking_search((4.0, 6.5), 0.040, 255, 1.0e-4, 5.0e-5, 5);
    println!(
        "{:>12}  {:>12}  {:>10}",
        "freq (GHz)", "tol (±GHz)", "error"
    );
    for r in &rows {
        println!(
            "{:>12.5}  {:>12.5}  {:>10.2e}",
            r.freq_ghz, r.drift_tolerance_ghz, r.center_error
        );
    }
    println!("\npaper Table II: 6.21286 ±0.01282 | 5.02978 ±0.01049 | 4.14238 ±0.00820");

    // Show the mechanism: pick an angle and find its delay.
    let f = rows[0].freq_ghz;
    for phi in [0.5f64, 1.0, 2.0, 3.0] {
        let (d, err) = best_delay_for_angle(phi, f, 0.040, 255);
        println!("Rz({phi:.1}) at {f:.5} GHz → wait d = {d:3} ticks (error {err:.1e})");
    }
    println!(
        "worst-case Rz error at {f:.5} GHz: {:.2e} (paper: ≤0.25e-4 in the ideal case)",
        worst_rz_error(f, 0.040, 255)
    );
}
