//! Reproduce Fig 2: drive a transmon with a resonant SFQ pulse train and
//! watch the Bloch vector spiral from |0⟩ towards the equator, one tiny
//! y-tip per qubit period.
//!
//! ```text
//! cargo run --release --example sfq_bloch_trajectory
//! ```

use digiq::qsim::fidelity::{average_gate_error, leakage};
use digiq::qsim::gates;
use digiq::qsim::pulse::{SfqParams, SfqPulseSim};
use digiq::qsim::transmon::Transmon;

fn main() {
    let qubit = Transmon::new(6.21286);
    let sim = SfqPulseSim::new(qubit, SfqParams::default());

    // One pulse per oscillation period: a clean Ry drive (Fig 2b, blue).
    let bits = sim.resonant_comb(63);
    println!(
        "driving with {} pulses over {} clock ticks ({:.2} ns)",
        bits.iter().filter(|&&b| b).count(),
        bits.len(),
        bits.len() as f64 * 0.040
    );

    let trajectory = sim.bloch_trajectory(&bits);
    println!("{:>5}  {:>8}  {:>8}  {:>8}", "tick", "x", "y", "z");
    for (k, (x, y, z)) in trajectory.iter().enumerate().step_by(16) {
        println!("{k:>5}  {x:>+8.4}  {y:>+8.4}  {z:>+8.4}");
    }
    let (x, y, z) = *trajectory.last().unwrap();
    println!("final Bloch vector: ({x:+.4}, {y:+.4}, {z:+.4})");

    // The resulting gate approximates Ry(π/2) up to z-phases (which the
    // DigiQ_opt delay mechanism supplies).
    let gate = sim.frame_gate_qubit(&bits);
    let mut best = f64::INFINITY;
    for k in 0..256 {
        for l in 0..64 {
            let a = k as f64 / 256.0 * std::f64::consts::TAU;
            let b = l as f64 / 64.0 * std::f64::consts::TAU;
            let target = gates::rz(a)
                .matmul(&gates::ry(std::f64::consts::FRAC_PI_2))
                .matmul(&gates::rz(b));
            best = best.min(average_gate_error(&gate, &target));
        }
    }
    println!(
        "error vs Ry(π/2)·Rz-frame: {best:.2e}, leakage {:.2e}",
        leakage(&gate)
    );
}
