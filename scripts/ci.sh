#!/usr/bin/env bash
# Tier-1 verification for the digiq workspace, runnable fully offline.
#
#   scripts/ci.sh                # build + tests + fmt check
#   scripts/ci.sh --smoke        # also run every bench binary (--small) and
#                                # the kernel micro-benchmarks in quick mode
#   scripts/ci.sh --engine-smoke # run a tiny 2-design x 2-benchmark engine
#                                # sweep with 2 workers and diff its JSON
#                                # against the checked-in golden file
#   scripts/ci.sh --cosim-smoke  # run the tiny cycle-accurate co-simulation
#                                # sweep (cosim --smoke) and diff its JSON
#                                # against tests/golden/cosim_smoke.json
#   scripts/ci.sh --pipeline-smoke # assert the default compile pipeline still
#                                # matches tests/golden/engine_smoke.json
#                                # byte-for-byte, then exercise the alternative
#                                # --router/--scheduler strategies
#   scripts/ci.sh --store-smoke  # artifact-store warm start + resume: run
#                                # sweep --smoke twice with one --cache-dir
#                                # (second run must report zero pass builds and
#                                # byte-identical JSON), then interrupt a sweep
#                                # and prove --resume merges byte-identically
#   scripts/ci.sh --dist-smoke   # distributed sweep: 4 worker processes
#                                # coordinating through claim files under one
#                                # --cache-dir must merge byte-identical to the
#                                # engine golden, including after a worker
#                                # holding a claim is killed mid-sweep
#   scripts/ci.sh --serve-smoke  # start the digiq-serve daemon on loopback,
#                                # drive it with loadgen (duplicate concurrent
#                                # requests must coalesce and every response
#                                # must match the sweep golden byte-for-byte),
#                                # then drain mid-sweep and prove a restarted
#                                # server resumes byte-identically
#   scripts/ci.sh --bench-json   # run the kernel micro-benchmarks and a
#                                # loadgen round against a local daemon, and
#                                # record the numbers in BENCH_<date>.json
#                                # (refuses to overwrite an existing record
#                                # for today unless --force is passed)
#   scripts/ci.sh --bench-compare # run the kernels fresh and diff against
#                                # the latest committed BENCH_*.json:
#                                # deterministic flop/alloc counter
#                                # regressions hard-fail, wall-time
#                                # regressions warn only; then record the
#                                # fresh numbers as a new BENCH file
#   scripts/ci.sh --bench-e2e    # run just the end-to-end rows (cold
#                                # sweep --full, paper-scale fig7, bounded
#                                # fig10, serve+loadgen) and diff their
#                                # deterministic checks against the latest
#                                # BENCH record's "e2e" section (records
#                                # predating the section pass with a note);
#                                # --bench-json/--bench-compare embed the
#                                # same rows in the record they write
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

# The ROADMAP's offline constraint: the dependency graph — dev edges
# included, test-only crates were the bulk of what PR 1 removed — must
# contain workspace members only (every crate line resolves to a path
# inside this repo, nothing from a registry).
echo "==> cargo tree --offline (workspace members only)"
externals=$(cargo tree --offline --workspace --edges normal,build,dev \
    | grep ' v' | grep -vF "($PWD" || true)
if [[ -n "$externals" ]]; then
    echo "external dependencies detected in cargo tree:" >&2
    echo "$externals" >&2
    exit 1
fi
echo "dependency graph is workspace-only"

# golden_smoke <label> <bin> <golden>: run `<bin> --smoke` (2 designs x
# 2 benchmarks, 2 workers) and diff its JSON against the committed golden.
golden_smoke() {
    local label=$1 bin=$2 golden=$3 tmp
    echo "==> $label smoke: 2 designs x 2 benchmarks, 2 workers, vs golden"
    tmp=$(mktemp)
    if ! cargo run -q --release --offline -p digiq-bench --bin "$bin" -- --smoke > "$tmp" \
        || ! diff -u "$golden" "$tmp"; then
        rm -f "$tmp"
        echo "$label smoke output diverged from $golden" >&2
        exit 1
    fi
    rm -f "$tmp"
    echo "$label smoke matches golden"
}

engine_smoke() {
    golden_smoke engine sweep tests/golden/engine_smoke.json
}

cosim_smoke() {
    golden_smoke cosim cosim tests/golden/cosim_smoke.json
}

# The default-pipeline golden-stability contract (see ROADMAP.md): the
# pass-pipeline refactor must keep `sweep --smoke` byte-identical to the
# committed golden, and every alternative strategy must still compile,
# validate and run end to end.
pipeline_smoke() {
    engine_smoke
    echo "==> alternative pipeline strategies (lookahead router, asap scheduler)"
    cargo run -q --release --offline -p digiq-bench --bin sweep -- \
        --small --workers 2 --router lookahead --scheduler asap > /dev/null
    cargo run -q --release --offline -p digiq-bench --bin cosim -- \
        --small --workers 2 --diff-analytic --json --router lookahead > /dev/null
    echo "alternative strategies OK"
}

# The artifact-store warm-start + resume contract: with a persistent
# --cache-dir, a second `sweep --smoke` run loads every compiled stage and
# baseline from disk (zero pass builds, byte-identical JSON — still matching
# the golden), and an interrupted sweep resumed with --resume merges
# byte-identically with an uninterrupted run.
store_smoke() {
    echo "==> artifact store smoke: warm start + resume, vs golden"
    local dir dir2 out1 out2 out3 err2
    dir=$(mktemp -d); dir2=$(mktemp -d)
    out1=$(mktemp); out2=$(mktemp); out3=$(mktemp); err2=$(mktemp)
    cargo run -q --release --offline -p digiq-bench --bin sweep -- \
        --smoke --cache-dir "$dir" > "$out1" 2>/dev/null
    cargo run -q --release --offline -p digiq-bench --bin sweep -- \
        --smoke --cache-dir "$dir" > "$out2" 2> "$err2"
    diff -u tests/golden/engine_smoke.json "$out1"
    diff -u "$out1" "$out2"
    if ! grep -q "pass_builds=0 " "$err2"; then
        echo "warm-started sweep rebuilt a pipeline stage:" >&2
        cat "$err2" >&2
        exit 1
    fi
    cargo run -q --release --offline -p digiq-bench --bin sweep -- \
        --smoke --cache-dir "$dir2" --resume --interrupt-after 1 >/dev/null 2>&1
    cargo run -q --release --offline -p digiq-bench --bin sweep -- \
        --smoke --cache-dir "$dir2" --resume > "$out3" 2>/dev/null
    diff -u "$out1" "$out3"
    rm -rf "$dir" "$dir2" "$out1" "$out2" "$out3" "$err2"
    echo "store smoke OK (warm start: zero pass builds; resume: byte-identical)"
}

# The distributed-sweep contract: N=4 single-thread worker processes
# coordinating through claim files under one --cache-dir merge
# byte-identical to the committed engine golden, and a worker killed
# while holding a claim leaves a sweep the survivors finish (stale-claim
# expiry) with the same bytes.
dist_smoke() {
    echo "==> distributed smoke: 4 worker processes + merge, vs golden"
    local dir out sweep=./target/release/sweep
    dir=$(mktemp -d); out=$(mktemp)
    "$sweep" --smoke --distributed --n-workers 4 --cache-dir "$dir" \
        > "$out" 2>/dev/null
    diff -u tests/golden/engine_smoke.json "$out"
    "$sweep" --smoke --merge --cache-dir "$dir" > "$out" 2>/dev/null
    diff -u tests/golden/engine_smoke.json "$out"
    rm -rf "$dir" "$out"

    echo "==> distributed smoke: kill a claim-holding worker, survivors finish"
    dir=$(mktemp -d); out=$(mktemp)
    # A doomed worker claims a job and sits on it; SIGKILL takes its
    # heartbeat with it, so the claim goes stale after the short TTL and
    # the fresh workers below reclaim the job.
    "$sweep" --smoke --worker-id 0 --n-workers 1 \
        --claim-ttl-ms 400 --dist-hold-ms 30000 --cache-dir "$dir" \
        >/dev/null 2>&1 &
    local doomed=$!
    sleep 1
    kill -9 "$doomed" 2>/dev/null || true
    wait "$doomed" 2>/dev/null || true
    "$sweep" --smoke --distributed --n-workers 2 --claim-ttl-ms 400 \
        --cache-dir "$dir" > "$out" 2>/dev/null
    diff -u tests/golden/engine_smoke.json "$out"
    rm -rf "$dir" "$out"
    echo "distributed smoke OK (merge byte-identical; killed worker reclaimed)"
}

# wait_for_serve <log>: poll the daemon's stdout for its bound address
# (port 0 resolves to a free port) and print it.
wait_for_serve() {
    local log=$1 addr i
    for i in $(seq 1 100); do
        addr=$(sed -n 's/^digiq-serve listening on //p' "$log" 2>/dev/null | head -n1)
        if [[ -n "$addr" ]]; then
            echo "$addr"
            return 0
        fi
        sleep 0.1
    done
    echo "digiq-serve did not come up; log:" >&2
    cat "$log" >&2
    return 1
}

# The sweep-service contract: responses byte-identical to the batch CLI
# golden, identical concurrent requests coalesced onto one evaluation,
# and graceful drain journaling in-flight sweeps so a restarted server
# resumes byte-identically.
serve_smoke() {
    echo "==> serve smoke: coalescing + golden byte-identity over the wire"
    local log addr pid dir
    log=$(mktemp)
    # --eval-delay-ms widens the (otherwise single-digit-ms) build
    # window so the duplicate requests deterministically coalesce.
    ./target/release/serve --workers 2 --eval-delay-ms 150 > "$log" &
    pid=$!
    addr=$(wait_for_serve "$log") || { kill "$pid" 2>/dev/null; exit 1; }
    if ! ./target/release/loadgen --addr "$addr" --clients 2 --requests 2 \
            --expect tests/golden/engine_smoke.json --assert-coalesced \
        || ! ./target/release/loadgen --addr "$addr" --clients 1 --requests 1 --cosim \
            --expect tests/golden/cosim_smoke.json --shutdown; then
        kill "$pid" 2>/dev/null || true
        exit 1
    fi
    wait "$pid"

    echo "==> serve smoke: drain mid-sweep, restart, resume byte-identically"
    dir=$(mktemp -d)
    : > "$log"
    ./target/release/serve --workers 2 --cache-dir "$dir" \
        --interrupt-after 1 --drain-after 1 > "$log" &
    pid=$!
    addr=$(wait_for_serve "$log") || { kill "$pid" 2>/dev/null; exit 1; }
    if ! ./target/release/loadgen --addr "$addr" --expect-interrupted; then
        kill "$pid" 2>/dev/null || true
        exit 1
    fi
    wait "$pid"
    : > "$log"
    ./target/release/serve --workers 2 --cache-dir "$dir" > "$log" &
    pid=$!
    addr=$(wait_for_serve "$log") || { kill "$pid" 2>/dev/null; exit 1; }
    if ! ./target/release/loadgen --addr "$addr" --clients 1 --requests 1 \
            --expect tests/golden/engine_smoke.json --shutdown; then
        kill "$pid" 2>/dev/null || true
        exit 1
    fi
    wait "$pid"
    rm -rf "$dir" "$log"
    echo "serve smoke OK (coalesced, byte-identical, drain-resumable)"
}

if [[ "${1:-}" == "--engine-smoke" ]]; then
    engine_smoke
fi

if [[ "${1:-}" == "--cosim-smoke" ]]; then
    cosim_smoke
fi

if [[ "${1:-}" == "--pipeline-smoke" ]]; then
    pipeline_smoke
fi

if [[ "${1:-}" == "--store-smoke" ]]; then
    store_smoke
fi

if [[ "${1:-}" == "--dist-smoke" ]]; then
    dist_smoke
fi

if [[ "${1:-}" == "--serve-smoke" ]]; then
    serve_smoke
fi

# The newest committed benchmark record (empty if none). Names embed an
# ISO date plus an optional _rN re-run suffix; N is compared numerically
# (lexicographic sort would put _r10 before _r2) with the plain date
# ranking as revision 0, i.e. before _r1.
latest_bench() {
    local f stem
    for f in BENCH_*.json; do
        [[ -e "$f" ]] || continue
        stem=${f%.json}
        if [[ "$stem" =~ ^(.*)_r([0-9]+)$ ]]; then
            printf '%s %08d %s\n' "${BASH_REMATCH[1]}" "${BASH_REMATCH[2]}" "$f"
        else
            printf '%s %08d %s\n' "$stem" 0 "$f"
        fi
    done | sort | tail -n1 | awk '{print $3}'
}

# bench_record <out_json> [extra kernel flags...]: run the kernel
# micro-benchmarks (quick mode), one loadgen round against a local serve
# daemon, and the end-to-end recorder, and write the combined record to
# <out_json>. Extra flags (e.g. --compare FILE) are passed to the kernels
# bench — and a --compare baseline is mirrored to the e2e recorder, which
# diffs its deterministic checks against the baseline's "e2e" section
# (records predating the section pass with a note). Any compare failure
# aborts before anything is written.
bench_record() {
    local out=$1; shift
    local kjson ljson ejson slog serve_pid serve_addr baseline="" prev=""
    local flag
    for flag in "$@"; do
        [[ "$prev" == "--compare" ]] && baseline=$flag
        prev=$flag
    done
    kjson=$(mktemp); ljson=$(mktemp); ejson=$(mktemp); slog=$(mktemp)
    echo "==> kernel micro-benchmarks (quick, json)"
    cargo bench --offline -p digiq-bench --bench kernels -- --quick --json-out "$kjson" "$@"
    echo "==> loadgen against a local serve daemon"
    ./target/release/serve --workers 2 > "$slog" &
    serve_pid=$!
    serve_addr=$(wait_for_serve "$slog") || { kill "$serve_pid" 2>/dev/null; exit 1; }
    if ! ./target/release/loadgen --addr "$serve_addr" --clients 4 --requests 2 \
            --json --shutdown > "$ljson"; then
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    wait "$serve_pid"
    echo "==> end-to-end rows (deterministic checks hard-fail, wall time warns)"
    if [[ -n "$baseline" ]]; then
        ./target/release/e2e --json-out "$ejson" --compare "$baseline"
    else
        ./target/release/e2e --json-out "$ejson"
    fi
    printf '{"date":"%s","kernels":%s,"loadgen":%s,"e2e":%s}\n' \
        "$(date +%F)" "$(cat "$kjson")" "$(cat "$ljson")" "$(cat "$ejson")" > "$out"
    rm -f "$kjson" "$ljson" "$ejson" "$slog"
    echo "benchmark numbers written to $out"
}

if [[ "${1:-}" == "--bench-json" ]]; then
    out="BENCH_$(date +%F).json"
    if [[ -e "$out" && "${2:-}" != "--force" ]]; then
        echo "$out already exists; pass --force to overwrite it" >&2
        exit 1
    fi
    bench_record "$out"
fi

if [[ "${1:-}" == "--bench-compare" ]]; then
    baseline=$(latest_bench)
    if [[ -z "$baseline" ]]; then
        echo "no committed BENCH_*.json to compare against" >&2
        exit 1
    fi
    # Never overwrite the baseline (or any same-day record): suffix re-runs
    # with _rN, which sorts after the plain date.
    out="BENCH_$(date +%F).json"
    n=2
    while [[ -e "$out" ]]; do
        out="BENCH_$(date +%F)_r${n}.json"
        n=$((n + 1))
    done
    echo "==> bench compare vs $baseline (counters hard-fail, wall time warn-only)"
    # Absolute path: cargo bench runs the binary with cwd = crates/bench.
    bench_record "$out" --compare "$PWD/$baseline"
fi

if [[ "${1:-}" == "--bench-e2e" ]]; then
    echo "==> end-to-end rows (bounded sizes; deterministic checks hard-fail, wall time warns)"
    baseline=$(latest_bench)
    if [[ -n "$baseline" ]]; then
        ./target/release/e2e --compare "$PWD/$baseline"
    else
        ./target/release/e2e
    fi
fi

if [[ "${1:-}" == "--smoke" ]]; then
    echo "==> bench binaries (--small)"
    for b in table1_design_space table2_parking table3_cells fig2_trajectory \
             fig3_cycle fig4_waveform fig7_cz_error fig8_synthesis \
             fig9_exec_time fig10_gate_error scalability sweep; do
        echo "--- $b"
        cargo run -q --release --offline -p digiq-bench --bin "$b" -- --small
    done

    echo "--- cosim (--diff-analytic)"
    cargo run -q --release --offline -p digiq-bench --bin cosim -- --diff-analytic --small

    pipeline_smoke
    cosim_smoke
    store_smoke
    dist_smoke
    serve_smoke

    echo "==> examples"
    for e in quickstart design_space_tour parking_frequencies sfq_bloch_trajectory; do
        echo "--- $e"
        cargo run -q --release --offline --example "$e"
    done

    echo "==> kernel micro-benchmarks (quick, vs latest BENCH record)"
    baseline=$(latest_bench)
    if [[ -n "$baseline" ]]; then
        # Compare-only (no new record): counter regressions hard-fail the
        # smoke, wall-time regressions warn (single-CPU CI is too noisy).
        # Absolute path: the bench binary's cwd is the package directory.
        cargo bench --offline -p digiq-bench --bench kernels -- --quick --compare "$PWD/$baseline"
    else
        cargo bench --offline -p digiq-bench --bench kernels -- --quick
    fi
fi

echo "CI OK"
