#!/usr/bin/env bash
# Tier-1 verification for the digiq workspace, runnable fully offline.
#
#   scripts/ci.sh          # build + tests + fmt check
#   scripts/ci.sh --smoke  # also run every bench binary (--small) and the
#                          # kernel micro-benchmarks in quick mode
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

if [[ "${1:-}" == "--smoke" ]]; then
    echo "==> bench binaries (--small)"
    for b in table1_design_space table2_parking table3_cells fig2_trajectory \
             fig3_cycle fig4_waveform fig7_cz_error fig8_synthesis \
             fig9_exec_time fig10_gate_error scalability; do
        echo "--- $b"
        cargo run -q --release --offline -p digiq-bench --bin "$b" -- --small
    done

    echo "==> examples"
    for e in quickstart design_space_tour parking_frequencies sfq_bloch_trajectory; do
        echo "--- $e"
        cargo run -q --release --offline --example "$e"
    done

    echo "==> kernel micro-benchmarks (quick)"
    cargo bench --offline -p digiq-bench --bench kernels -- --quick
fi

echo "CI OK"
