#!/usr/bin/env bash
# Tier-1 verification for the digiq workspace, runnable fully offline.
#
#   scripts/ci.sh                # build + tests + fmt check
#   scripts/ci.sh --smoke        # also run every bench binary (--small) and
#                                # the kernel micro-benchmarks in quick mode
#   scripts/ci.sh --engine-smoke # run a tiny 2-design x 2-benchmark engine
#                                # sweep with 2 workers and diff its JSON
#                                # against the checked-in golden file
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

engine_smoke() {
    echo "==> engine smoke: 2 designs x 2 benchmarks, 2 workers, vs golden"
    local tmp
    tmp=$(mktemp)
    cargo run -q --release --offline -p digiq-bench --bin sweep -- --smoke > "$tmp"
    if ! diff -u tests/golden/engine_smoke.json "$tmp"; then
        rm -f "$tmp"
        echo "engine smoke output diverged from tests/golden/engine_smoke.json" >&2
        exit 1
    fi
    rm -f "$tmp"
    echo "engine smoke matches golden"
}

if [[ "${1:-}" == "--engine-smoke" ]]; then
    engine_smoke
fi

if [[ "${1:-}" == "--smoke" ]]; then
    echo "==> bench binaries (--small)"
    for b in table1_design_space table2_parking table3_cells fig2_trajectory \
             fig3_cycle fig4_waveform fig7_cz_error fig8_synthesis \
             fig9_exec_time fig10_gate_error scalability sweep; do
        echo "--- $b"
        cargo run -q --release --offline -p digiq-bench --bin "$b" -- --small
    done

    engine_smoke

    echo "==> examples"
    for e in quickstart design_space_tour parking_frequencies sfq_bloch_trajectory; do
        echo "--- $e"
        cargo run -q --release --offline --example "$e"
    done

    echo "==> kernel micro-benchmarks (quick)"
    cargo bench --offline -p digiq-bench --bench kernels -- --quick
fi

echo "CI OK"
