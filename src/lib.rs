//! # digiq — a scalable digital SFQ controller for quantum computers
//!
//! Full-system Rust reproduction of **DigiQ** (Jokar et al., HPCA 2022):
//! the first system-level design of a NISQ-friendly Single-Flux-Quantum
//! classical controller for superconducting quantum computers.
//!
//! This facade crate re-exports the five workspace layers:
//!
//! * [`qsim`] — quantum physics substrate (transmons, SFQ pulse trains,
//!   coupled-qubit CZ simulation, fidelity metrics, optimizers);
//! * [`sfq_hw`] — RSFQ hardware substrate (Table III cells, netlists,
//!   synthesis passes, calibrated cost model, analog current generator);
//! * [`qcircuit`] — circuit IR, the Table IV NISQ benchmarks, 32×32-grid
//!   routing, crosstalk-aware scheduling, and the unified compiler pass
//!   pipeline (`qcircuit::pipeline`) with pluggable strategies;
//! * [`calib`] — the §V software-calibration layer (bitstream search,
//!   parking frequencies, drift models, per-qubit decomposition);
//! * [`digiq_core`] — the controller architectures themselves (design
//!   space, hardware composition, execution model, error model,
//!   scalability).
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results. The
//! `examples/` directory and the `digiq-bench` harnesses regenerate every
//! table and figure.

pub use calib;
pub use digiq_core;
pub use qcircuit;
pub use qsim;
pub use sfq_hw;
