//! Cross-crate integration tests: the full DigiQ pipeline from physics to
//! architecture, exercised end-to-end at reduced scale.

use digiq::calib::bitstream::{find_bitstream, SearchConfig, ZFreedom};
use digiq::calib::opt_decomp::{decompose_opt, realize_opt, OptBasis};
use digiq::digiq_core::design::ControllerDesign;
use digiq::digiq_core::engine::{EvalEngine, SweepReport, SweepSpec};
use digiq::digiq_core::system::DigiqSystem;
use digiq::qcircuit::bench;
use digiq::qcircuit::bench::Benchmark;
use digiq::qcircuit::ir::StateVector;
use digiq::qcircuit::lower::lower_to_cz;
use digiq::qsim::optimize::GaConfig;
use digiq::qsim::pulse::SfqParams;
use digiq::qsim::transmon::Transmon;
use digiq::sfq_hw::cost::CostModel;
use digiq::sfq_hw::json::ToJson;

/// Physics → calibration → decomposition: a bitstream found by the GA,
/// recomputed on a drifted qubit, still compiles H below 1e-3 error via
/// the delay decomposition — §V-A's central claim, across three crates.
#[test]
fn software_calibration_closes_the_loop() {
    let params = SfqParams::default();
    let nominal = Transmon::new(6.21286);
    let found = find_bitstream(
        nominal,
        params,
        &digiq::qsim::gates::ry(std::f64::consts::FRAC_PI_2),
        ZFreedom::PrePost,
        &SearchConfig {
            length: 253,
            ga: GaConfig {
                population: 32,
                generations: 40,
                ..GaConfig::default()
            },
        },
    );
    assert!(
        found.error < 2e-3,
        "bitstream search error {:.2e}",
        found.error
    );

    // Drift the qubit by +6 MHz (the paper's σ scale) and recalibrate.
    let drifted = Transmon::new(6.21286 + 0.006);
    let ubs = digiq::calib::bitstream::basis_op_for_qubit(&found.bits, drifted, params);
    let basis = OptBasis::new(&ubs, drifted.frequency_ghz, params.clock_period_ns, 255);
    let target = digiq::qsim::gates::h();
    let dec = decompose_opt(&target, &basis, 0.0, 3, 1e-4);
    assert!(
        dec.error < 5e-3,
        "drifted H decomposition error {:.2e}",
        dec.error
    );
    // The realized operation matches the reported error.
    let realized = realize_opt(&basis, &dec);
    let direct = digiq::qsim::fidelity::average_gate_error(&realized, &target);
    assert!((direct - dec.error).abs() < 1e-9);
}

/// Compiler → architecture: a benchmark circuit survives the full
/// pipeline and the Fig 9 orderings hold at reduced scale.
#[test]
fn pipeline_orderings_hold() {
    let model = CostModel::default();
    let qgan = bench::qgan(64, 2, 11);

    let min2 = DigiqSystem::build(ControllerDesign::DigiqMin { bs: 2 }, 2, &model);
    let opt16 = DigiqSystem::build(ControllerDesign::DigiqOpt { bs: 16 }, 2, &model);
    let opt4 = DigiqSystem::build(ControllerDesign::DigiqOpt { bs: 4 }, 2, &model);

    let r_min = min2.evaluate_circuit("qgan", &qgan);
    let r_opt16 = opt16.evaluate_circuit("qgan", &qgan);
    let r_opt4 = opt4.evaluate_circuit("qgan", &qgan);

    // Everything is slower than the Impossible MIMD reference.
    for r in [&r_min, &r_opt16, &r_opt4] {
        assert!(r.normalized_time >= 1.0);
    }
    // More broadcast slots help the parallel workload.
    assert!(r_opt16.normalized_time <= r_opt4.normalized_time);
}

/// Benchmark semantics survive lowering (statevector oracle) and the
/// hardware fits the fridge — the headline sanity chain.
#[test]
fn benchmarks_and_budget() {
    // 3-bit Cuccaro adds correctly after CZ lowering.
    let add = bench::cuccaro_adder(3);
    let low = lower_to_cz(&add);
    let mut c = digiq::qcircuit::ir::Circuit::new(low.n_qubits());
    // a = 5, b = 6 → sum 11 = 3 mod 8 with carry.
    for (i, bit) in [true, false, true].iter().enumerate() {
        if *bit {
            c.x(2 + 2 * i);
        }
    }
    for (i, bit) in [false, true, true].iter().enumerate() {
        if *bit {
            c.x(1 + 2 * i);
        }
    }
    c.extend(&low);
    let mut sv = StateVector::zero(c.n_qubits());
    sv.apply_circuit(&c);
    let (idx, p) = sv.argmax();
    assert!(p > 0.99);
    let nq = c.n_qubits();
    let bit = |q: usize| (idx >> (nq - 1 - q)) & 1;
    let sum = bit(1) | (bit(3) << 1) | (bit(5) << 2);
    assert_eq!(sum, 3, "5 + 6 mod 8");
    assert_eq!(bit(2 * 3 + 1), 1, "carry out");

    // Every DigiQ design point fits 10 W.
    let model = CostModel::default();
    for design in [
        ControllerDesign::DigiqMin { bs: 2 },
        ControllerDesign::DigiqMin { bs: 4 },
        ControllerDesign::DigiqOpt { bs: 8 },
        ControllerDesign::DigiqOpt { bs: 16 },
    ] {
        let sys = DigiqSystem::build(design, 2, &model);
        let hw = sys.hardware.expect("buildable");
        assert!(
            hw.report.power_w < 10.0,
            "{design}: {} W",
            hw.report.power_w
        );
        assert!(
            hw.report.worst_stage_ps < 40.0,
            "{design} misses the 40 ps clock"
        );
    }
}

/// Architecture at full breadth: the entire Table I design space runs
/// through the batched evaluation engine on a small grid, hardware and
/// all, and the cross-design orderings hold on every benchmark.
#[test]
fn full_design_space_through_the_engine() {
    let mut designs = SweepSpec::table_one_designs();
    designs.push(ControllerDesign::ImpossibleMimd.into());
    let spec = SweepSpec::small_grid(
        designs,
        &[Benchmark::Qgan, Benchmark::Ising, Benchmark::Bv],
        6,
        6,
    )
    .with_hardware();
    let engine = EvalEngine::new(digiq::sfq_hw::cost::CostModel::default());
    let report = engine.run(&spec, 2);

    // 5 designs × 3 benchmarks, merged design-major.
    assert_eq!(report.jobs.len(), 15);
    for job in &report.jobs {
        assert!(job.report.normalized_time >= 1.0, "{}", job.design);
        assert!(job.report.exec.total_ns > 0.0);
        match job.design {
            ControllerDesign::ImpossibleMimd => {
                assert_eq!(job.power_w, None, "the reference has no hardware")
            }
            d => {
                let p = job.power_w.unwrap_or_else(|| panic!("{d}: hardware"));
                assert!(p > 0.0 && p < 11.0, "{d}: {p} W");
            }
        }
    }
    // Each benchmark compiled exactly once for all five designs.
    assert_eq!(report.cache.compile_misses, 3);
    assert_eq!(report.cache.compile_hits, 12);
    // The DigiQ designs beat the naive register-streaming baseline on
    // hardware cost by an order of magnitude (Fig 8's headline).
    let power = |d: ControllerDesign| {
        report
            .jobs
            .iter()
            .find(|j| j.design == d)
            .and_then(|j| j.power_w)
            .unwrap()
    };
    assert!(
        power(ControllerDesign::DigiqOpt { bs: 8 }) * 4.0 < power(ControllerDesign::SfqMimdNaive)
    );
    // The whole report survives serialization.
    let parsed = SweepReport::parse(&report.to_json_string()).unwrap();
    assert_eq!(parsed, report);
}

/// The two execution engines, end to end through the facade: the
/// cycle-accurate co-simulator reproduces the analytic model's cycle
/// counts on the full small design space, and the co-simulation sweep
/// survives serialization.
#[test]
fn cosim_validates_the_analytic_model_end_to_end() {
    let mut designs = SweepSpec::table_one_designs();
    designs.push(ControllerDesign::ImpossibleMimd.into());
    let spec = SweepSpec::small_grid(designs, &[Benchmark::Qgan, Benchmark::Bv], 6, 6);
    let engine = EvalEngine::new(digiq::sfq_hw::cost::CostModel::default());
    let report = engine.run_cosim(&spec, 2);

    assert_eq!(report.jobs.len(), 10);
    assert!(
        report.all_exact(1e-9),
        "divergence: {:?}",
        report.worst_diff()
    );
    // The SIMD contention story holds in the cycle-accurate machine too:
    // the analytic and simulated serialization agree per design, and the
    // co-simulator attributes every contention cycle to some slot.
    for job in &report.jobs {
        assert_eq!(
            job.cosim.serialization_cycles, job.analytic.serialization_cycles,
            "{}",
            job.design
        );
        let attributed: u64 = job.cosim.slot_serialization.iter().map(|s| s.cycles).sum();
        assert_eq!(attributed, job.cosim.serialization_cycles);
    }
    let parsed =
        digiq::digiq_core::engine::CosimSweepReport::parse(&report.to_json_string()).unwrap();
    assert_eq!(parsed, report);
}

/// The paper's cross-artifact consistency: Table II parking frequencies
/// are exactly where the drift population is parked, and the delay phases
/// those frequencies generate drive the opt decomposition.
#[test]
fn parking_and_drift_are_consistent() {
    let rows = digiq::calib::parking::parking_search((6.1, 6.3), 0.040, 255, 1e-4, 1e-4, 1);
    assert!(!rows.is_empty());
    let f = rows[0].freq_ghz;
    assert!(
        (f - 6.21286).abs() < 0.08,
        "search strays from Table II: {f}"
    );

    // Population parked there drifts within tolerance most of the time.
    let pop = digiq::calib::drift::sample_population(
        32,
        256,
        &[f, 4.14238],
        &digiq::calib::drift::DriftModel::default(),
    );
    let within = pop
        .iter()
        .filter(|q| q.nominal_ghz > 5.0)
        .filter(|q| q.drift_ghz().abs() <= rows[0].drift_tolerance_ghz)
        .count();
    let total = pop.iter().filter(|q| q.nominal_ghz > 5.0).count();
    assert!(
        within * 10 >= total * 8,
        "only {within}/{total} qubits within drift tolerance"
    );
}

/// Compiler pass pipeline through the facade: the system lists its
/// stages, reports per-pass metrics, and every strategy combination
/// yields a valid evaluation whose numbers respond to the strategy — the
/// full scenario-diversity surface in one cross-crate check.
#[test]
fn pass_pipeline_strategies_through_the_facade() {
    use digiq::qcircuit::pipeline::{PipelineConfig, RouteStrategy, ScheduleStrategy};

    let model = CostModel::default();
    let design = ControllerDesign::DigiqOpt { bs: 8 };
    let qgan = bench::qgan(64, 2, 11);

    let default = DigiqSystem::build(design, 2, &model);
    assert_eq!(
        default.pipeline().stage_labels(),
        ["lower", "route", "lower_swaps", "schedule"]
    );
    let metrics = default.compile_metrics(&qgan);
    assert_eq!(metrics.len(), 4);
    assert!(metrics[3].slots_after.unwrap() > 0);

    let r_default = default.evaluate_circuit("qgan", &qgan);
    // Per-pass metrics agree with the evaluation report.
    assert_eq!(metrics[1].swap_delta(), r_default.swaps);
    assert_eq!(metrics[3].slots_after, Some(r_default.slots));
    let asap = DigiqSystem::build_with(
        design,
        2,
        &model,
        PipelineConfig::default().with_scheduler(ScheduleStrategy::Asap),
    );
    let r_asap = asap.evaluate_circuit("qgan", &qgan);
    // Crosstalk-oblivious packing needs fewer slots (it ignores the
    // spectator constraint the aware scheduler pays for).
    assert!(r_asap.slots < r_default.slots);
    assert!(r_asap.normalized_time >= 1.0);

    let lookahead = DigiqSystem::build_with(
        design,
        2,
        &model,
        PipelineConfig::default().with_router(RouteStrategy::Lookahead { window: 16 }),
    );
    let r_look = lookahead.evaluate_circuit("qgan", &qgan);
    assert!(r_look.normalized_time >= 1.0);

    // The cycle-accurate co-simulator stays in lockstep with the
    // analytic model under a non-default pipeline, via the same facade.
    let d = digiq::digiq_core::cosim::diff_analytic(
        &lookahead.cosimulate_circuit(&qgan, false),
        &r_look.exec,
    );
    assert!(d.is_exact(1e-9), "{d:?}");
}
